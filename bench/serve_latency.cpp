/**
 * @file
 * Freeze-and-serve latency/throughput bench (the deployment claim of
 * Section V / Table IV, engineered): the per-call-quantize baseline
 * re-quantizes every weight tensor on every request, while the frozen
 * path snapshots Q(W) once and the serve engine coalesces requests
 * into micro-batches.  Reports single-stream throughput for both modes
 * plus engine throughput, p50/p99 request latency and the coalesced
 * batch-size profile; a replica sweep (frozen snapshots are shared
 * handles, so N workers cost N eval scratches, not N weight copies);
 * and the decode-session comparison (warm prefix reuse vs recomputing
 * every visible position per token).  Into BENCH_serve_latency.json.
 *
 *   $ ./bench/serve_latency
 */

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "artifact/reader.h"
#include "bench_report.h"
#include "gemm/packed_gemm.h"
#include "models/mlp.h"
#include "models/serve_adapters.h"
#include "models/transformer.h"
#include "nn/quant.h"
#include "obs/obs.h"
#include "serve/engine.h"
#include "serve/session_cache.h"
#include "stats/rng.h"

using namespace mx;
using tensor::Tensor;

namespace {

double
now_sec()
{
    return static_cast<double>(bench::detail::now_ns()) * 1e-9;
}

/** Drive one engine over @p rows; returns wall seconds.  Latency
 *  percentiles come from the engine's own histogram-backed stats()
 *  afterwards (the obs::Histogram path replaced this bench's ad-hoc
 *  sort-and-index percentile math). */
double
run_engine(serve::InferenceEngine& engine,
           const std::vector<std::vector<float>>& rows)
{
    std::vector<std::future<serve::Reply>> futures;
    futures.reserve(rows.size());
    const double t0 = now_sec();
    for (const auto& r : rows)
        futures.push_back(engine.submit(r));
    for (auto& f : futures)
        bench::do_not_optimize(f.get());
    return now_sec() - t0;
}

/** Emit one latency distribution's p50/p99 as <prefix>_p50_ms /
 *  <prefix>_p99_ms (informational metrics; stage-level breakdown of
 *  where a request's time went). */
void
report_stage(bench::Report& report, const std::string& prefix,
             const serve::LatencySummary& s)
{
    report.metric(prefix + "_p50_ms", s.p50_ms, "ms");
    report.metric(prefix + "_p99_ms", s.p99_ms, "ms");
}

} // namespace

int
main()
{
    bench::Report report("serve_latency");
    const nn::QuantSpec spec = nn::QuantSpec::forward_only(core::mx9());
    bool ok = true;

    // ------------------------------------------------------------------
    // MLP workload: single-row requests (the DLRM/MLP-style serving
    // shape where weight quantization dominates the per-request cost).
    // ------------------------------------------------------------------
    bench::banner("MLP serving: per-call quantize vs frozen snapshot");
    const std::int64_t mlp_in = 256, mlp_out = 64;
    const std::size_t mlp_requests = bench::scaled(512, 96);
    models::MlpClassifier mlp(mlp_in, {256, 256}, mlp_out, spec, 71);

    stats::Rng rng(72);
    std::vector<std::vector<float>> mlp_rows(mlp_requests);
    for (auto& r : mlp_rows) {
        r.resize(static_cast<std::size_t>(mlp_in));
        for (float& v : r)
            v = static_cast<float>(rng.uniform(-2.0, 2.0));
    }

    auto mlp_single_stream = [&]() {
        const double t0 = now_sec();
        for (const auto& r : mlp_rows) {
            Tensor x({1, mlp_in});
            std::copy(r.begin(), r.end(), x.data());
            bench::do_not_optimize(mlp.logits(x, false));
        }
        return static_cast<double>(mlp_requests) / (now_sec() - t0);
    };

    // The headline frozen metrics honour the ambient MX_GEMM policy;
    // the A/B legs pin Mode::Off explicitly and restore the ambient
    // mode afterwards (so MX_GEMM=0 runs stay on the values path
    // throughout).
    const gemm::Mode ambient_mode = gemm::mode();

    const double mlp_fake = mlp_single_stream();
    mlp.freeze();
    const double mlp_frozen = mlp_single_stream();
    // A/B the two frozen execution paths: dequantized-values matmul
    // (the PR 3 serving path) vs the packed-domain mx_gemm pipeline.
    gemm::set_mode(gemm::Mode::Off);
    const double mlp_frozen_legacy = mlp_single_stream();
    gemm::set_mode(ambient_mode);

    serve::EngineConfig mlp_cfg;
    mlp_cfg.rows_independent = true;
    serve::InferenceEngine mlp_engine(
        [&](const Tensor& batch) { return mlp.logits(batch, false); },
        mlp_in, mlp_cfg);
    const double mlp_engine_wall = run_engine(mlp_engine, mlp_rows);
    const serve::EngineStats mlp_stats = mlp_engine.stats();
    const double mlp_mean_batch = mlp_stats.mean_batch_rows();
    const double mlp_engine_rps =
        static_cast<double>(mlp_requests) / mlp_engine_wall;

    const double mlp_speedup = mlp_frozen / mlp_fake;
    std::printf("  fake-quant single-stream : %10.1f rows/s\n", mlp_fake);
    std::printf("  frozen (values matmul)   : %10.1f rows/s  (%.2fx)\n",
                mlp_frozen_legacy, mlp_frozen_legacy / mlp_fake);
    std::printf("  frozen single-stream     : %10.1f rows/s  (%.2fx, "
                "%.2fx over values path)\n",
                mlp_frozen, mlp_speedup, mlp_frozen / mlp_frozen_legacy);
    std::printf("  frozen engine            : %10.1f rows/s  "
                "(p50 %.3f ms, p99 %.3f ms, mean batch %.1f)\n",
                mlp_engine_rps, mlp_stats.request_total.p50_ms,
                mlp_stats.request_total.p99_ms, mlp_mean_batch);
    std::printf("  stage breakdown          : queue p50 %.3f / p99 %.3f "
                "ms, assemble p50 %.4f ms, execute p50 %.3f / p99 %.3f "
                "ms\n",
                mlp_stats.queue_wait.p50_ms, mlp_stats.queue_wait.p99_ms,
                mlp_stats.batch_assemble.p50_ms,
                mlp_stats.batch_execute.p50_ms,
                mlp_stats.batch_execute.p99_ms);

    report.metric("serve_mlp_fakequant_items_per_sec", mlp_fake, "rows/s");
    report.metric("serve_mlp_frozen_items_per_sec", mlp_frozen, "rows/s");
    report.metric("serve_mlp_frozen_legacy_items_per_sec",
                  mlp_frozen_legacy, "rows/s");
    report.metric("mlp_packed_gemm_speedup",
                  mlp_frozen / mlp_frozen_legacy, "x");
    report.metric("serve_mlp_engine_items_per_sec", mlp_engine_rps,
                  "rows/s");
    report.metric("mlp_frozen_speedup", mlp_speedup, "x");
    report_stage(report, "mlp_engine", mlp_stats.request_total);
    report_stage(report, "mlp_engine_queue", mlp_stats.queue_wait);
    report_stage(report, "mlp_engine_assemble", mlp_stats.batch_assemble);
    report_stage(report, "mlp_engine_execute", mlp_stats.batch_execute);
    report.metric("mlp_engine_mean_batch_rows", mlp_mean_batch, "rows");

    const bool mlp_ok = mlp_frozen >= 2.0 * mlp_fake;
    report.flag("mlp_frozen_ge_2x_single_stream", mlp_ok);
    ok = ok && mlp_ok;

    // ------------------------------------------------------------------
    // Instrumentation overhead: with MX_TRACE unset a span is one
    // relaxed atomic load + branch and the always-on counters /
    // histograms are relaxed fetch_adds.  Measure each primitive's
    // disabled-path cost in a tight loop, charge a conservative
    // per-request op budget, and claim the implied serve-throughput
    // overhead stays under 2% — the contract that lets the
    // instrumentation stay compiled in everywhere.
    // ------------------------------------------------------------------
    bench::banner("mx_obs: disabled-instrumentation overhead");
    const bool was_tracing = obs::trace_enabled();
    obs::set_trace_enabled(false);
    obs::Histogram probe_hist;
    static obs::Counter& probe_counter =
        obs::counter("bench.obs_probe");
    const int obs_iters = 1 << 18;
    double span_ns = 0, count_ns = 0, hist_ns = 0;
    {
        const double t0 = now_sec();
        for (int i = 0; i < obs_iters; ++i) {
            obs::Span s("bench.noop");
            s.arg("i", i);
            bench::do_not_optimize(s); // keep the load+branch per iter
        }
        span_ns = (now_sec() - t0) * 1e9 / obs_iters;
    }
    {
        const double t0 = now_sec();
        for (int i = 0; i < obs_iters; ++i)
            probe_counter.add(1);
        count_ns = (now_sec() - t0) * 1e9 / obs_iters;
    }
    {
        const double t0 = now_sec();
        for (int i = 0; i < obs_iters; ++i)
            probe_hist.record(static_cast<std::uint64_t>(i));
        hist_ns = (now_sec() - t0) * 1e9 / obs_iters;
    }
    obs::set_trace_enabled(was_tracing);
    // Per-request op budget on the serve path, each primitive counted
    // at several times what a request actually crosses: the engine
    // opens 3 spans and records 8 histogram samples per BATCH (2
    // engine-owned + 2 registry per request, 2+2 per batch), and the
    // GEMM/kernel/attn counters tick a handful of times per batch —
    // 32 spans, 32 counter bumps, and 8 histogram records per single
    // request is a >= 10x cushion over all of it.
    const double spans_per_request = 32.0;
    const double counts_per_request = 32.0;
    const double hists_per_request = 8.0;
    const double request_ns = 1e9 / mlp_engine_rps;
    const double overhead_pct = 100.0 *
                                (spans_per_request * span_ns +
                                 counts_per_request * count_ns +
                                 hists_per_request * hist_ns) /
                                request_ns;
    std::printf("  disabled span            : %10.2f ns/op\n", span_ns);
    std::printf("  counter add              : %10.2f ns/op\n", count_ns);
    std::printf("  histogram record         : %10.2f ns/op\n", hist_ns);
    std::printf("  implied serve overhead   : %10.3f %% of a %.1f us "
                "request (%.0f/%.0f/%.0f span/counter/histogram "
                "budget)\n",
                overhead_pct, request_ns * 1e-3, spans_per_request,
                counts_per_request, hists_per_request);
    report.metric("obs_disabled_span_ns", span_ns, "ns");
    report.metric("obs_counter_add_ns", count_ns, "ns");
    report.metric("obs_histogram_record_ns", hist_ns, "ns");
    report.metric("obs_disabled_overhead_pct", overhead_pct, "%");
    const bool obs_ok = overhead_pct < 2.0;
    report.flag("obs_disabled_overhead_lt_2pct", obs_ok);
    ok = ok && obs_ok;

    // ------------------------------------------------------------------
    // Replica sweep: N workers over the one bounded queue, each serving
    // the same frozen model (eval forwards are mutation-free; the
    // FrozenTensor snapshots are shared handles).  Per-batch pool
    // sharding stays off — the replica is the parallelism unit.
    // ------------------------------------------------------------------
    bench::banner("MLP serving: replica sweep (MX_SERVE_REPLICAS)");
    const std::size_t hardware_lanes =
        std::max(1u, std::thread::hardware_concurrency());
    auto run_replicas = [&](std::size_t replicas) {
        serve::EngineConfig rc;
        rc.replicas = replicas;
        rc.queue_capacity = 256;
        serve::InferenceEngine engine(
            [&](const Tensor& batch) { return mlp.logits(batch, false); },
            mlp_in, rc);
        const double wall = run_engine(engine, mlp_rows);
        return static_cast<double>(mlp_requests) / wall;
    };
    const double mlp_r1 = run_replicas(1);
    const double mlp_r2 = run_replicas(2);
    const double mlp_r4 = run_replicas(4);
    std::printf("  %zu hardware lanes\n", hardware_lanes);
    std::printf("  1 replica  : %10.1f rows/s\n", mlp_r1);
    std::printf("  2 replicas : %10.1f rows/s  (%.2fx)\n", mlp_r2,
                mlp_r2 / mlp_r1);
    std::printf("  4 replicas : %10.1f rows/s  (%.2fx)\n", mlp_r4,
                mlp_r4 / mlp_r1);
    report.metric("hardware_lanes", static_cast<double>(hardware_lanes),
                  "threads");
    report.metric("serve_mlp_replica1_items_per_sec", mlp_r1, "rows/s");
    report.metric("serve_mlp_replica2_items_per_sec", mlp_r2, "rows/s");
    report.metric("serve_mlp_replica4_items_per_sec", mlp_r4, "rows/s");
    report.metric("mlp_replica4_scaling", mlp_r4 / mlp_r1, "x");

    // Replication must never *cost* throughput (lock contention on the
    // queue/stats mutex would); the near-linear-scaling claim needs
    // spare physical lanes and is only recorded where they exist.
    const bool replicas_ok = mlp_r4 >= 0.70 * mlp_r1;
    report.flag("mlp_replicas4_not_slower", replicas_ok);
    ok = ok && replicas_ok;
    if (hardware_lanes >= 6) {
        const bool scaling_ok = mlp_r4 >= 2.5 * mlp_r1;
        report.flag("mlp_replicas4_ge_2_5x_replica1", scaling_ok);
        ok = ok && scaling_ok;
    }

    // ------------------------------------------------------------------
    // Transformer workload: one decode window per request (Table IV
    // generative serving).  The forward is matmul-bound (seq_len rows
    // amortize each weight), so the frozen win is smaller than the
    // MLP's — the packed dequant-free matmul is the next lever.
    // ------------------------------------------------------------------
    bench::banner("GPT serving: per-call quantize vs frozen snapshot");
    models::TransformerConfig cfg;
    cfg.vocab = 64;
    cfg.d_model = 64;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.seq_len = 8;
    cfg.spec = spec;
    cfg.seed = 73;
    models::GptMini gpt(cfg);
    const std::size_t gpt_requests = bench::scaled(192, 48);

    std::vector<std::vector<float>> windows(gpt_requests);
    for (auto& w : windows) {
        w.resize(static_cast<std::size_t>(cfg.seq_len));
        for (float& t : w)
            t = static_cast<float>(rng.next_u64() %
                                   static_cast<std::uint64_t>(cfg.vocab));
    }

    auto window_batch = [&](const Tensor& in) {
        return gpt.window_logits(in);
    };

    auto gpt_single_stream = [&]() {
        const double t0 = now_sec();
        for (const auto& w : windows) {
            Tensor x({1, cfg.seq_len});
            std::copy(w.begin(), w.end(), x.data());
            bench::do_not_optimize(window_batch(x));
        }
        return static_cast<double>(gpt_requests) / (now_sec() - t0);
    };

    const double gpt_fake = gpt_single_stream();
    gpt.freeze();
    const double gpt_frozen = gpt_single_stream();
    gemm::set_mode(gemm::Mode::Off);
    const double gpt_frozen_legacy = gpt_single_stream();
    gemm::set_mode(ambient_mode);

    serve::EngineConfig gpt_cfg;
    gpt_cfg.rows_independent = true;
    serve::InferenceEngine gpt_engine(window_batch, cfg.seq_len, gpt_cfg);
    const double gpt_engine_wall = run_engine(gpt_engine, windows);
    const serve::EngineStats gpt_stats = gpt_engine.stats();
    const double gpt_mean_batch = gpt_stats.mean_batch_rows();
    const double gpt_engine_rps =
        static_cast<double>(gpt_requests) / gpt_engine_wall;

    const double gpt_speedup = gpt_frozen / gpt_fake;
    std::printf("  fake-quant single-stream : %10.1f windows/s\n",
                gpt_fake);
    std::printf("  frozen (values matmul)   : %10.1f windows/s  (%.2fx)\n",
                gpt_frozen_legacy, gpt_frozen_legacy / gpt_fake);
    std::printf("  frozen single-stream     : %10.1f windows/s  (%.2fx, "
                "%.2fx over values path)\n",
                gpt_frozen, gpt_speedup, gpt_frozen / gpt_frozen_legacy);
    std::printf("  frozen engine            : %10.1f windows/s  "
                "(p50 %.3f ms, p99 %.3f ms, mean batch %.1f)\n",
                gpt_engine_rps, gpt_stats.request_total.p50_ms,
                gpt_stats.request_total.p99_ms, gpt_mean_batch);
    std::printf("  stage breakdown          : queue p50 %.3f / p99 %.3f "
                "ms, assemble p50 %.4f ms, execute p50 %.3f / p99 %.3f "
                "ms\n",
                gpt_stats.queue_wait.p50_ms, gpt_stats.queue_wait.p99_ms,
                gpt_stats.batch_assemble.p50_ms,
                gpt_stats.batch_execute.p50_ms,
                gpt_stats.batch_execute.p99_ms);

    report.metric("serve_gpt_fakequant_items_per_sec", gpt_fake,
                  "windows/s");
    report.metric("serve_gpt_frozen_items_per_sec", gpt_frozen,
                  "windows/s");
    report.metric("serve_gpt_frozen_legacy_items_per_sec",
                  gpt_frozen_legacy, "windows/s");
    report.metric("gpt_packed_gemm_speedup",
                  gpt_frozen / gpt_frozen_legacy, "x");
    report.metric("serve_gpt_engine_items_per_sec", gpt_engine_rps,
                  "windows/s");
    report.metric("gpt_frozen_speedup", gpt_speedup, "x");
    report_stage(report, "gpt_engine", gpt_stats.request_total);
    report_stage(report, "gpt_engine_queue", gpt_stats.queue_wait);
    report_stage(report, "gpt_engine_assemble", gpt_stats.batch_assemble);
    report_stage(report, "gpt_engine_execute", gpt_stats.batch_execute);
    report.metric("gpt_engine_mean_batch_rows", gpt_mean_batch, "rows");

    const bool gpt_ok = gpt_frozen >= 1.2 * gpt_fake;
    report.flag("gpt_frozen_ge_1_2x_single_stream", gpt_ok);
    ok = ok && gpt_ok;

    // The packed-domain GEMM claim (Figure 6 / ROADMAP "dequant-free
    // packed matmul"): on the SIMD leg the matmul-bound GPT decode
    // window must beat the dequantized-values serving path by >= 1.3x.
    // The scalar packed kernel is a reference, not a fast path, and
    // MX_GEMM=0 runs never take the packed path at all, so the claim
    // is only recorded where the packed path actually engaged.
    if (gemm::packed_profitable() && gemm::route_packed(false)) {
        const bool packed_ok = gpt_frozen >= 1.3 * gpt_frozen_legacy;
        report.flag("gpt_packed_ge_1_3x_over_values_path", packed_ok);
        ok = ok && packed_ok;
    }

    // ------------------------------------------------------------------
    // Decode sessions: greedy decode of growing contexts through
    // decode_logits, warm (per-layer K/V prefix reuse) vs cold
    // (recompute every visible position per token).  Both run
    // causal-visibility quantization, so the token streams must be
    // identical — the speedup is pure work elimination.
    // ------------------------------------------------------------------
    bench::banner("GPT decode: warm session prefix vs full recompute");
    models::TransformerConfig dcfg;
    dcfg.vocab = 64;
    dcfg.d_model = 64;
    dcfg.heads = 4;
    dcfg.layers = 2;
    dcfg.seq_len = 16;
    dcfg.spec = spec;
    dcfg.seed = 79;
    models::GptMini dgpt(dcfg);
    dgpt.freeze();
    const int dstreams = static_cast<int>(bench::scaled(8, 4));
    const int prompt_len = 2;
    std::vector<std::vector<int>> prompts(
        static_cast<std::size_t>(dstreams));
    for (int s = 0; s < dstreams; ++s) {
        auto& p = prompts[static_cast<std::size_t>(s)];
        p.resize(prompt_len);
        for (int& t : p)
            t = static_cast<int>(rng.next_u64() %
                                 static_cast<std::uint64_t>(dcfg.vocab));
    }
    auto argmax_tok = [&](const float* logits) {
        int best = 0;
        for (int v = 1; v < dcfg.vocab; ++v)
            if (logits[v] > logits[best])
                best = v;
        return best;
    };

    // Direct model-level decode (no engine) isolates the algorithmic
    // win per token.
    auto decode_direct = [&](bool warm) {
        std::vector<models::GptDecodeSession> sessions(
            static_cast<std::size_t>(dstreams));
        auto ctx = prompts;
        std::int64_t tokens = 0;
        const double t0 = now_sec();
        for (int step = prompt_len; step < dcfg.seq_len; ++step)
            for (int s = 0; s < dstreams; ++s) {
                auto& c = ctx[static_cast<std::size_t>(s)];
                Tensor logits = dgpt.decode_logits(
                    c, warm ? &sessions[static_cast<std::size_t>(s)]
                            : nullptr);
                c.push_back(argmax_tok(logits.data()));
                ++tokens;
            }
        const double tps = static_cast<double>(tokens) /
                           (now_sec() - t0);
        return std::make_pair(tps, ctx);
    };
    auto [cold_tps, cold_ctx] = decode_direct(false);
    auto [warm_tps, warm_ctx] = decode_direct(true);

    // The full serving stack: replicated engine + session-aware batch
    // function + LRU session cache.
    double engine_warm_tps = 0;
    {
        serve::SessionCache sessions(
            static_cast<std::size_t>(2 * dstreams));
        serve::EngineConfig ec;
        ec.queue_capacity = 64;
        serve::InferenceEngine engine(
            models::gpt_decode_batch_fn(dgpt, sessions), dcfg.seq_len,
            ec);
        auto ctx = prompts;
        std::int64_t tokens = 0;
        const double t0 = now_sec();
        for (int step = prompt_len; step < dcfg.seq_len; ++step) {
            std::vector<std::future<serve::Reply>> futures;
            futures.reserve(static_cast<std::size_t>(dstreams));
            for (int s = 0; s < dstreams; ++s)
                futures.push_back(engine.submit(
                    models::GptMini::pack_decode_row(
                        ctx[static_cast<std::size_t>(s)], dcfg.seq_len),
                    static_cast<std::uint64_t>(s + 1)));
            for (int s = 0; s < dstreams; ++s) {
                serve::Reply r = futures[static_cast<std::size_t>(s)]
                                     .get();
                ctx[static_cast<std::size_t>(s)].push_back(
                    argmax_tok(r.output.data()));
                ++tokens;
            }
        }
        engine_warm_tps = static_cast<double>(tokens) /
                          (now_sec() - t0);

        const serve::EngineStats dstats = engine.stats();
        report_stage(report, "gpt_session_engine", dstats.request_total);
        report_stage(report, "gpt_session_engine_queue",
                     dstats.queue_wait);
        report_stage(report, "gpt_session_engine_execute",
                     dstats.batch_execute);

        // Session-memory accounting: the LRU now tracks the bytes each
        // resident GptDecodeSession pins (native MX streams, not FP32
        // rows), the capacity-planning number for MX_SERVE_SESSIONS.
        const serve::SessionCache::Stats sst = sessions.stats();
        std::printf("  session cache            : %zu resident, "
                    "%llu bytes resident, %llu hits / %llu misses, "
                    "%llu evictions (%llu bytes)\n",
                    sessions.size(),
                    static_cast<unsigned long long>(sst.resident_bytes),
                    static_cast<unsigned long long>(sst.hits),
                    static_cast<unsigned long long>(sst.misses),
                    static_cast<unsigned long long>(sst.evictions),
                    static_cast<unsigned long long>(sst.evicted_bytes));
        report.metric("gpt_session_cache_resident_bytes",
                      static_cast<double>(sst.resident_bytes), "bytes");
        report.metric("gpt_session_cache_hits",
                      static_cast<double>(sst.hits), "ops");
        report.metric("gpt_session_cache_misses",
                      static_cast<double>(sst.misses), "ops");
        report.metric("gpt_session_cache_evicted_bytes",
                      static_cast<double>(sst.evicted_bytes), "bytes");
    }

    const double reuse_speedup = warm_tps / cold_tps;
    std::printf("  cold (recompute window)  : %10.1f tokens/s\n",
                cold_tps);
    std::printf("  warm (prefix reuse)      : %10.1f tokens/s  (%.2fx)\n",
                warm_tps, reuse_speedup);
    std::printf("  warm via session engine  : %10.1f tokens/s\n",
                engine_warm_tps);
    std::printf("  warm streams match cold  : %s\n",
                warm_ctx == cold_ctx ? "yes" : "NO (bug!)");

    report.metric("serve_gpt_decode_cold_items_per_sec", cold_tps,
                  "tokens/s");
    report.metric("serve_gpt_decode_warm_items_per_sec", warm_tps,
                  "tokens/s");
    report.metric("serve_gpt_session_engine_items_per_sec",
                  engine_warm_tps, "tokens/s");
    report.metric("gpt_prefix_reuse_speedup", reuse_speedup, "x");

    const bool decode_match = warm_ctx == cold_ctx;
    report.flag("gpt_decode_warm_matches_cold", decode_match);
    ok = ok && decode_match;
    const bool reuse_ok = warm_tps >= 1.15 * cold_tps;
    report.flag("gpt_warm_prefix_beats_recompute", reuse_ok);
    ok = ok && reuse_ok;

    // ------------------------------------------------------------------
    // Native MX K/V cache footprint: one stream decoded to a full
    // window, then the bytes its session actually pins (packed MX K
    // rows + transposed-V slabs) against the FP32 rows the legacy
    // cache stored for the same prefix.  MX9 keys+values cost 9 bits
    // per element plus per-block headers (~2.25 B/elem for K+V
    // together) vs 8 B/elem in FP32 — the >= 3x claim below is the
    // paper's storage story applied to serving state, and it is also
    // the bytes a warm decode step READS per token of prefix (the
    // packed kernels consume the streams directly; nothing is
    // dequantized up front).
    // ------------------------------------------------------------------
    bench::banner("GPT decode: native MX K/V cache footprint");
    models::GptDecodeSession fses;
    bench::do_not_optimize(dgpt.decode_logits(warm_ctx[0], &fses));
    const double ftokens = static_cast<double>(fses.tokens.size());
    const double kv_packed_bytes =
        static_cast<double>(models::decode_session_bytes(fses));
    // What the legacy cache held for the same prefix: the token ids
    // plus per layer the [prefix, d_model] FP32 K and V tensors.
    const double kv_fp32_bytes =
        ftokens * static_cast<double>(sizeof(int)) +
        static_cast<double>(dcfg.layers) * 2.0 * ftokens *
            static_cast<double>(dcfg.d_model) *
            static_cast<double>(sizeof(float));
    const double kv_ratio = kv_fp32_bytes / kv_packed_bytes;
    std::printf("  FP32 rows (legacy cache) : %10.1f bytes/token\n",
                kv_fp32_bytes / ftokens);
    std::printf("  native MX streams        : %10.1f bytes/token  "
                "(%.2fx smaller)\n",
                kv_packed_bytes / ftokens, kv_ratio);
    report.metric("gpt_kv_fp32_bytes_per_token", kv_fp32_bytes / ftokens,
                  "bytes");
    report.metric("gpt_kv_packed_bytes_per_token",
                  kv_packed_bytes / ftokens, "bytes");
    report.metric("gpt_kv_cache_compression", kv_ratio, "x");
    const bool kv_ok = kv_ratio >= 3.0;
    report.flag("gpt_native_kv_ge_3x_smaller_than_fp32", kv_ok);
    ok = ok && kv_ok;

    // ------------------------------------------------------------------
    // Cold start: process -> first token.  The artifact path mmaps the
    // frozen bit streams written at export time (src/artifact/) and
    // never quantizes; the rebuild path re-initializes the model and
    // pays quantize+pack for every weight before it can serve.  Same
    // config + seed, so both must produce the identical first token.
    // ------------------------------------------------------------------
    bench::banner("GPT cold start: artifact mmap-load vs rebuild+refreeze");
    const std::string apath = "serve_latency_coldstart.mxfrozen";
    dgpt.save_frozen(apath);
    const std::vector<int>& cold_prompt = prompts[0];

    auto best_of = [&](auto&& fn) {
        double best = 0.0;
        int first_tok = -1;
        for (int rep = 0; rep < 3; ++rep) {
            const double t0 = now_sec();
            const int tok = fn();
            const double ms = (now_sec() - t0) * 1e3;
            if (rep == 0 || ms < best)
                best = ms;
            first_tok = tok;
        }
        return std::make_pair(best, first_tok);
    };

    auto [artifact_ms, artifact_tok] = best_of([&]() {
        artifact::ArtifactReader reader(apath);
        models::GptMini m = models::GptMini::load_frozen(reader);
        return argmax_tok(m.decode_logits(cold_prompt).data());
    });
    auto [packed_only_ms, packed_only_tok] = best_of([&]() {
        artifact::ArtifactReader reader(apath);
        models::GptMini m = models::GptMini::load_frozen(
            reader, artifact::LoadOptions{false});
        return argmax_tok(m.decode_logits(cold_prompt).data());
    });
    auto [rebuild_ms, rebuild_tok] = best_of([&]() {
        models::GptMini m(dcfg);
        m.freeze();
        return argmax_tok(m.decode_logits(cold_prompt).data());
    });
    std::remove(apath.c_str());

    const double coldstart_speedup = rebuild_ms / artifact_ms;
    std::printf("  artifact mmap-load       : %10.3f ms to first token  "
                "(%.2fx vs rebuild)\n",
                artifact_ms, coldstart_speedup);
    std::printf("  artifact, packed-only    : %10.3f ms to first token\n",
                packed_only_ms);
    std::printf("  rebuild + refreeze       : %10.3f ms to first token\n",
                rebuild_ms);

    report.metric("gpt_coldstart_artifact_ms", artifact_ms, "ms");
    report.metric("gpt_coldstart_artifact_packed_only_ms", packed_only_ms,
                  "ms");
    report.metric("gpt_coldstart_rebuild_ms", rebuild_ms, "ms");
    report.metric("gpt_coldstart_speedup", coldstart_speedup, "x");

    // Determinism across the two cold-start routes is part of the
    // artifact contract; the timing itself is informational.
    const bool coldstart_match = artifact_tok == rebuild_tok &&
                                 packed_only_tok == rebuild_tok;
    report.flag("gpt_coldstart_first_token_matches_rebuild",
                coldstart_match);
    ok = ok && coldstart_match;

    // The engine's micro-batching must not give back the frozen win to
    // queueing overhead (loose floor: throughput is noisy).
    const bool engine_ok = mlp_engine_rps >= 0.5 * mlp_frozen &&
                           gpt_engine_rps >= 0.5 * gpt_frozen;
    report.flag("engine_keeps_frozen_throughput", engine_ok);
    ok = ok && engine_ok;

    std::printf("\nfreeze once, serve forever: the fake-quant tax is "
                "gone from the hot path.\n");
    return report.finish(ok);
}
