/**
 * @file
 * Reproduces the Theorem 1 analysis (Section IV-C / IX): measured QSNR
 * versus the analytic lower bound across the MX family and stress
 * distributions, and the bound's parameter trends (linear in m,
 * logarithmic in k1/k2).
 */

#include <algorithm>
#include <cstdio>

#include "bench_report.h"
#include "core/qsnr_harness.h"
#include "core/theory.h"

using namespace mx;
using namespace mx::core;

int
main()
{
    bench::Report report("theorem1_bound");
    QsnrRunConfig cfg;
    cfg.num_vectors = bench::scaled(4000, 200);
    cfg.vector_length = 1024;
    double min_margin = 1e30;

    bench::banner("Theorem 1: measured QSNR vs lower bound");
    std::printf("%-26s %-18s %10s %10s %8s\n", "Format", "Distribution",
                "measured", "bound", "margin");
    bool all_hold = true;
    std::vector<BdrFormat> formats = {mx9(), mx6(), mx4(), msfp16(),
                                      msfp12(), mx_custom(4, 8, 32, 2, 4)};
    std::vector<stats::Distribution> dists = {
        stats::Distribution::GaussianVariableVariance,
        stats::Distribution::LogNormal,
        stats::Distribution::GaussianWithOutliers,
    };
    for (const auto& f : formats) {
        for (auto d : dists) {
            QsnrRunConfig c = cfg;
            c.distribution = d;
            double measured = measure_qsnr_db(f, c);
            double bound = qsnr_lower_bound_db(f, c.vector_length);
            all_hold &= measured >= bound;
            min_margin = std::min(min_margin, measured - bound);
            std::printf("%-26s %-18s %9.2f %9.2f %+8.2f %s\n",
                        f.name.c_str(), stats::to_string(d).c_str(),
                        measured, bound, measured - bound,
                        measured >= bound ? "" : "VIOLATION");
        }
    }

    bench::banner("Bound trends (Eq. 4)");
    std::printf("m sweep (k1=16, k2=2, d2=1): ");
    for (int m = 1; m <= 8; ++m)
        std::printf("%.1f ", qsnr_lower_bound_db(m, 16, 2, 1, 1024));
    std::printf("dB\nk1 sweep (m=7, k2=2, d2=1): ");
    for (int k1 : {8, 16, 32, 64, 128})
        std::printf("%.1f ", qsnr_lower_bound_db(7, k1, 2, 1, 1024));
    std::printf("dB\nk2 sweep (m=7, k1=16, d2=1): ");
    for (int k2 : {1, 2, 4, 8, 16})
        std::printf("%.1f ", qsnr_lower_bound_db(7, 16, k2, 1, 1024));
    std::printf("dB\nd2 sweep (m=7, k1=16, k2=2): ");
    for (int d2 : {0, 1, 2, 3})
        std::printf("%.1f ", qsnr_lower_bound_db(7, 16, 2, d2, 1024));
    std::printf("dB\n");

    report.metric("cases", static_cast<double>(formats.size() *
                                               dists.size()));
    report.metric("min_margin", min_margin, "dB");
    report.flag("bound_held_all_cases", all_hold);
    std::printf("\nTheorem 1 bound held in all %zu cases: %s\n",
                formats.size() * dists.size(),
                all_hold ? "REPRODUCED" : "VIOLATED");
    return report.finish(all_hold);
}
