/**
 * @file
 * Reproduces the Section IV-C "knee" analysis that selected the Table II
 * parameters:
 *   - d2 1 -> 2 buys only ~0.5 dB but +30-50% normalized cost;
 *   - k2 8 -> 2 buys ~2 dB for only ~3% extra cost;
 *   - k2 2 -> 1 buys ~0.7 dB more but +30-40% cost;
 * plus the observation that the QSNR-per-cost trade flattens as bits per
 * element grow.  Also sweeps rounding modes and scaling policies as
 * additional ablations.
 */

#include <cstdio>

#include "bench_report.h"
#include "core/qsnr_harness.h"
#include "hw/cost.h"

using namespace mx;
using namespace mx::core;

namespace {

struct Eval
{
    double qsnr;
    double cost;
};

Eval
eval(const BdrFormat& f, const QsnrRunConfig& cfg, const hw::CostModel& cm)
{
    return {measure_qsnr_db(f, cfg), cm.evaluate(f).area_memory_product};
}

} // namespace

int
main()
{
    bench::Report report("ablation_knee");
    QsnrRunConfig cfg;
    cfg.num_vectors = bench::scaled(4000, 200);
    cfg.vector_length = 1024;
    hw::CostModel cm;

    bench::banner("d2 sweep at m=7, k1=16, k2=2 (paper: 1->2 = +0.5 dB, "
                  "+30-50% cost)");
    Eval d2_1 = eval(mx_custom(7, 8, 16, 1, 2), cfg, cm);
    Eval d2_2 = eval(mx_custom(7, 8, 16, 2, 2), cfg, cm);
    std::printf("d2=1: %6.2f dB @ cost %.3f\n", d2_1.qsnr, d2_1.cost);
    std::printf("d2=2: %6.2f dB @ cost %.3f  (delta %+.2f dB, %+.0f%% "
                "cost)\n", d2_2.qsnr, d2_2.cost, d2_2.qsnr - d2_1.qsnr,
                100.0 * (d2_2.cost / d2_1.cost - 1.0));

    bench::banner("k2 sweep at m=7, k1=16, d2=1 (paper: 8->2 = +2 dB at "
                  "~3%; 2->1 = +0.7 dB at +30-40%)");
    Eval k2_8 = eval(mx_custom(7, 8, 16, 1, 8), cfg, cm);
    Eval k2_4 = eval(mx_custom(7, 8, 16, 1, 4), cfg, cm);
    Eval k2_2 = eval(mx_custom(7, 8, 16, 1, 2), cfg, cm);
    Eval k2_1 = eval(mx_custom(7, 8, 16, 1, 1), cfg, cm);
    std::printf("k2=8: %6.2f dB @ cost %.3f\n", k2_8.qsnr, k2_8.cost);
    std::printf("k2=4: %6.2f dB @ cost %.3f\n", k2_4.qsnr, k2_4.cost);
    std::printf("k2=2: %6.2f dB @ cost %.3f  (8->2: %+.2f dB, %+.0f%% "
                "cost)\n", k2_2.qsnr, k2_2.cost, k2_2.qsnr - k2_8.qsnr,
                100.0 * (k2_2.cost / k2_8.cost - 1.0));
    std::printf("k2=1: %6.2f dB @ cost %.3f  (2->1: %+.2f dB, %+.0f%% "
                "cost)\n", k2_1.qsnr, k2_1.cost, k2_1.qsnr - k2_2.qsnr,
                100.0 * (k2_1.cost / k2_2.cost - 1.0));

    bench::banner("Diminishing returns as bits/element grow");
    for (int m : {2, 4, 7, 9}) {
        Eval lo = eval(mx_custom(m, 8, 16, 1, 2), cfg, cm);
        Eval hi = eval(mx_custom(m + 1, 8, 16, 1, 2), cfg, cm);
        std::printf("m %d->%d: %+5.2f dB per +%.0f%% cost\n", m, m + 1,
                    hi.qsnr - lo.qsnr,
                    100.0 * (hi.cost / lo.cost - 1.0));
    }

    bench::banner("Rounding-mode ablation (MX6)");
    for (auto rm : {RoundingMode::NearestEven, RoundingMode::NearestAway,
                    RoundingMode::TowardZero, RoundingMode::Stochastic}) {
        QsnrRunConfig c = cfg;
        c.rounding = rm;
        std::printf("%-14s %6.2f dB\n", to_string(rm),
                    measure_qsnr_db(mx6(), c));
    }

    bench::banner("Delayed vs just-in-time scaling (FP8-E4M3, scaled "
                  "INT8; Fig 7 caption)");
    for (const auto& f : {fp8_e4m3(), scaled_int(8)}) {
        QsnrRunConfig c = cfg;
        c.policy = ScalingPolicy::Delayed;
        double delayed = measure_qsnr_db(f, c);
        c.policy = ScalingPolicy::JustInTime;
        double jit = measure_qsnr_db(f, c);
        std::printf("%-14s delayed %6.2f dB | offline %6.2f dB "
                    "(offline shifts QSNR by %+.2f)\n", f.name.c_str(),
                    delayed, jit, jit - delayed);
    }

    // Checked shape: k2 8->2 is nearly free and buys ~2 dB; k2 2->1 and
    // d2 1->2 buy little fidelity for strictly more cost (our analytical
    // model prices the k2=1 penalty lower than the paper's synthesis
    // flow did — see EXPERIMENTS.md).
    report.metric("d2_1_to_2_qsnr_gain", d2_2.qsnr - d2_1.qsnr, "dB");
    report.metric("d2_1_to_2_cost_ratio", d2_2.cost / d2_1.cost);
    report.metric("k2_8_to_2_qsnr_gain", k2_2.qsnr - k2_8.qsnr, "dB");
    report.metric("k2_8_to_2_cost_ratio", k2_2.cost / k2_8.cost);
    report.metric("k2_2_to_1_qsnr_gain", k2_1.qsnr - k2_2.qsnr, "dB");
    report.metric("k2_2_to_1_cost_ratio", k2_1.cost / k2_2.cost);

    bool ok = (k2_2.qsnr - k2_8.qsnr) > 1.0 &&
              (k2_2.cost / k2_8.cost - 1.0) < 0.10 &&
              k2_1.cost > k2_2.cost &&
              (k2_1.qsnr - k2_2.qsnr) < 1.5 &&
              (d2_2.qsnr - d2_1.qsnr) < 1.5 &&
              d2_2.cost > d2_1.cost * 1.1;
    report.flag("knee_shape", ok);
    std::printf("\nknee analysis shape: %s\n",
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
