/**
 * @file
 * Reproduces Table IV's shape: direct-cast generative inferencing with
 * separate weight/activation formats (w, a) over {MX9, MX6, MX4}^2.
 * Expectation: graceful degradation as formats narrow, with (MX4, MX4)
 * clearly worst, and (MX9, MX9) ~ FP32.
 */

#include <cstdio>

#include "bench_report.h"
#include "data/synthetic.h"
#include "models/transformer.h"
#include "nn/optimizer.h"

using namespace mx;
using namespace mx::models;

int
main()
{
    bench::Report report("table4_gpt_cast");
    data::MarkovText corpus(16, 4242);
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 48;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.seq_len = 12;
    cfg.seed = 77;
    GptMini model(cfg);

    // Pretrain the "large LM" in FP32.
    const int steps = static_cast<int>(bench::scaled(500, 60));
    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(88);
    for (int s = 0; s < steps; ++s) {
        auto b = corpus.windows(24, cfg.seq_len, rng);
        opt.zero_grad();
        model.train_loss(b);
        opt.step();
    }

    auto eval = corpus.windows(static_cast<std::int64_t>(
                                   bench::scaled(256, 64)),
                               cfg.seq_len, rng);
    double fp32 = model.eval_loss(eval);

    bench::banner("Table IV (shape): direct-cast (weights, activations) "
                  "sweep — eval LM loss (lower is better)");
    std::printf("Baseline FP32: %.4f\n", fp32);
    std::printf("%-14s %10s %10s\n", "(w, a)", "LM loss", "delta");

    struct Combo
    {
        const char* label;
        core::BdrFormat w, a;
    };
    const Combo combos[] = {
        {"(MX9, MX9)", core::mx9(), core::mx9()},
        {"(MX6, MX9)", core::mx6(), core::mx9()},
        {"(MX6, MX6)", core::mx6(), core::mx6()},
        {"(MX4, MX9)", core::mx4(), core::mx9()},
        {"(MX4, MX6)", core::mx4(), core::mx6()},
        {"(MX4, MX4)", core::mx4(), core::mx4()},
    };
    double loss99 = 0, loss44 = 0;
    report.metric("lm_loss_fp32", fp32, "nats");
    for (const Combo& c : combos) {
        model.set_spec(nn::QuantSpec::weights_activations(c.w, c.a));
        double loss = model.eval_loss(eval);
        std::printf("%-14s %10.4f %+10.4f\n", c.label, loss, loss - fp32);
        report.metric(std::string("lm_loss_") + c.label, loss, "nats");
        if (std::string(c.label) == "(MX9, MX9)")
            loss99 = loss;
        if (std::string(c.label) == "(MX4, MX4)")
            loss44 = loss;
    }

    bool ok = std::fabs(loss99 - fp32) < 0.02 && loss44 > loss99;
    report.flag("mx9_drop_in_mx4_worst", ok);
    std::printf("\n(MX9,MX9) drop-in & (MX4,MX4) degrades most: %s\n",
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
