/**
 * @file
 * Reproduces Table V's shape: span-extraction QA with BERT-style
 * encoders, reporting Exact-Match / F1 for FP32 and direct casts to MX9
 * and MX6.  Expectation: no quantization-aware fine-tuning needed even
 * at MX6 — both casts stay within a whisker of FP32.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "core/thread_pool.h"
#include "data/synthetic.h"
#include "models/transformer.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "stats/metrics.h"

using namespace mx;
using namespace mx::models;
using tensor::Tensor;

namespace {

/**
 * predict_spans over @p eval sharded across the process pool
 * (MX_THREADS): eval forwards are mutation-free and every sequence is
 * independent (BERT attention never crosses a sequence boundary), so
 * whole-sequence chunks of FIXED size — not thread-count-derived —
 * evaluate concurrently and stitch back in order.  Bit-identical to
 * the sequential call for any MX_THREADS, including 1.
 */
std::vector<std::pair<int, int>>
predict_spans_sharded(BertMini& model, const data::SequenceBatch& eval)
{
    const std::int64_t chunk = 16; // sequences per shard, fixed
    const std::int64_t n_chunks = (eval.n + chunk - 1) / chunk;
    std::vector<std::pair<int, int>> spans(
        static_cast<std::size_t>(eval.n));
    core::ThreadPool::shared().parallel_for(
        static_cast<std::size_t>(n_chunks), [&](std::size_t c) {
            const std::int64_t lo = static_cast<std::int64_t>(c) * chunk;
            const std::int64_t hi = std::min(eval.n, lo + chunk);
            data::SequenceBatch sub;
            sub.n = hi - lo;
            sub.seq_len = eval.seq_len;
            sub.tokens.assign(
                eval.tokens.begin() + lo * eval.seq_len,
                eval.tokens.begin() + hi * eval.seq_len);
            const auto part = model.predict_spans(sub);
            std::copy(part.begin(), part.end(),
                      spans.begin() + static_cast<std::ptrdiff_t>(lo));
        });
    return spans;
}

/** Interleave start/end labels into per-position CE targets. */
void
qa_loss_and_backward(BertMini& model, const data::SequenceBatch& batch,
                     double* loss_out)
{
    Tensor logits = model.qa_logits(batch, true); // [n*T, 2]
    // Split into start and end logit matrices [n, T].
    const std::int64_t n = batch.n, t = batch.seq_len;
    Tensor start({n, t}), end({n, t});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t p = 0; p < t; ++p) {
            start.data()[i * t + p] = logits.data()[(i * t + p) * 2 + 0];
            end.data()[i * t + p] = logits.data()[(i * t + p) * 2 + 1];
        }
    std::vector<int> s_labels(static_cast<std::size_t>(n)),
        e_labels(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        s_labels[static_cast<std::size_t>(i)] =
            batch.labels[static_cast<std::size_t>(2 * i)];
        e_labels[static_cast<std::size_t>(i)] =
            batch.labels[static_cast<std::size_t>(2 * i + 1)];
    }
    auto rs = nn::softmax_cross_entropy(start, s_labels);
    auto re = nn::softmax_cross_entropy(end, e_labels);
    *loss_out = 0.5 * (rs.loss + re.loss);
    Tensor grad({n * t, 2});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t p = 0; p < t; ++p) {
            grad.data()[(i * t + p) * 2 + 0] =
                0.5f * rs.grad.data()[i * t + p];
            grad.data()[(i * t + p) * 2 + 1] =
                0.5f * re.grad.data()[i * t + p];
        }
    model.qa_backward(grad);
}

} // namespace

int
main()
{
    bench::Report report("table5_bert_qa");
    data::SpanQa task(4, 24, 16, 555);
    TransformerConfig cfg;
    cfg.vocab = 24;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seq_len = 16;
    cfg.seed = 66;
    BertMini model(cfg, 2);

    // Fast mode still needs enough steps to train past the regime
    // where an MX6 cast visibly hurts; 160 and below undertrain and
    // fail the claim check, 250 passes with margin (seeds are fixed,
    // so this is deterministic).
    const int steps = static_cast<int>(bench::scaled(400, 250));
    nn::Adam opt(model.params(), 3e-3);
    stats::Rng rng(99);
    for (int s = 0; s < steps; ++s) {
        auto b = task.sample(16, rng);
        opt.zero_grad();
        double loss;
        qa_loss_and_backward(model, b, &loss);
        opt.step();
    }

    auto eval = task.sample(static_cast<std::int64_t>(
                                bench::scaled(256, 64)), rng);
    std::vector<std::pair<int, int>> gold;
    for (std::int64_t i = 0; i < eval.n; ++i)
        gold.emplace_back(eval.labels[static_cast<std::size_t>(2 * i)],
                          eval.labels[static_cast<std::size_t>(2 * i + 1)]);

    bench::banner("Table V (shape): QA span extraction, Exact-Match / F1");
    std::printf("%-22s %8s %8s\n", "Setting", "EM", "F1");
    double em_fp = 0, em_mx6 = 0;
    auto row = [&](const char* label, const char* key) {
        auto pred = predict_spans_sharded(model, eval);
        double em = stats::span_exact_match(pred, gold);
        double f1 = stats::span_f1(pred, gold);
        std::printf("%-22s %8.4f %8.4f\n", label, em, f1);
        report.metric(std::string("em_") + key, em);
        report.metric(std::string("f1_") + key, f1);
        return em;
    };
    em_fp = row("Baseline FP32", "fp32");
    model.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    row("Direct cast (MX9)", "cast_mx9");
    model.set_spec(nn::QuantSpec::forward_only(core::mx6()));
    em_mx6 = row("Direct cast (MX6)", "cast_mx6");

    bool ok = em_fp > 0.5 && em_mx6 > em_fp - 0.05;
    report.flag("mx6_cast_no_finetune", ok);
    std::printf("\nMX6 direct cast needs no fine-tuning on QA: %s\n",
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
