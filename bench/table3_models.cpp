/**
 * @file
 * Reproduces Table III's shape: for each model family, compare
 *   FP32 training | MX9 training | direct cast MX9 | direct cast MX6 |
 *   MX6 quantization-aware fine-tune
 * on the family's synthetic task (see DESIGN.md substitutions).
 * Expectations from the paper: MX9 training ~ FP32; MX9 direct cast is a
 * drop-in; MX6 direct cast may dip; fine-tuning recovers it.
 */

#include <cstdio>
#include <functional>

#include "bench_report.h"
#include "core/thread_pool.h"
#include "data/synthetic.h"
#include "models/dlrm_mini.h"
#include "models/lstm_seq2seq.h"
#include "models/mlp.h"
#include "models/resnet_mini.h"
#include "models/trainer.h"
#include "models/transformer.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "stats/metrics.h"

using namespace mx;
using namespace mx::models;
using tensor::Tensor;

namespace {

struct Row
{
    std::string task, metric;
    double fp32, mx9_train, cast_mx9, cast_mx6, finetune_mx6;
    bool higher_better;
};

void
print_row(const Row& r)
{
    std::printf("%-22s %-10s %9.4f %9.4f %9.4f %9.4f %9.4f\n",
                r.task.c_str(), r.metric.c_str(), r.fp32, r.mx9_train,
                r.cast_mx9, r.cast_mx6, r.finetune_mx6);
}

/** MLP family (image-classification stand-in). */
Row
run_mlp()
{
    data::GaussianClusters task(6, 12, 42);
    const int steps = static_cast<int>(bench::scaled(250, 40));

    auto fit = [&](MlpClassifier& model, double lr, int nsteps,
                   std::uint64_t seed) {
        nn::Adam opt(model.params(), lr);
        stats::Rng rng(seed);
        for (int s = 0; s < nsteps; ++s) {
            auto b = task.sample(64, rng);
            opt.zero_grad();
            Tensor logits = model.logits(b.x, true);
            auto res = nn::softmax_cross_entropy(logits, b.labels);
            model.backward(res.grad);
            opt.step();
        }
    };
    auto acc = [&](MlpClassifier& m) {
        stats::Rng rng(200);
        auto e = task.sample(2048, rng);
        Tensor logits = m.logits(e.x, false);
        return stats::top1_accuracy(e.labels, logits.vec(), 6);
    };

    MlpClassifier fp(12, {48, 48}, 6, nn::QuantSpec::fp32(), 7);
    fit(fp, 3e-3, steps, 100);
    MlpClassifier mx(12, {48, 48}, 6, nn::QuantSpec::uniform(core::mx9()),
                     7);
    fit(mx, 3e-3, steps, 100);
    Row r{"MLP (clusters)", "Top-1", 0, 0, 0, 0, 0, true};
    r.fp32 = acc(fp);
    r.mx9_train = acc(mx);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    r.cast_mx9 = acc(fp);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx6()));
    r.cast_mx6 = acc(fp);
    // Fine-tune in place: MX6 forward, FP32 backward, short schedule.
    fp.set_spec(recipe_spec(Recipe::FineTune, core::mx6()));
    fit(fp, 1e-3, steps / 4, 300);
    r.finetune_mx6 = acc(fp);
    return r;
}

/** CNN family (ResNet stand-in). */
Row
run_cnn()
{
    data::ClusterImages task(4, 8, 43);
    const int steps = static_cast<int>(bench::scaled(80, 15));
    auto acc = [&](ResNetMini& m) {
        stats::Rng rng(201);
        auto e = task.sample(512, rng);
        Tensor logits = m.logits(e.x, false);
        return stats::top1_accuracy(e.labels, logits.vec(), 4);
    };
    auto train = [&](nn::QuantSpec spec) {
        ResNetMini model(8, 8, 4, spec, 8);
        nn::Adam opt(model.params(), 3e-3);
        stats::Rng rng(101);
        for (int s = 0; s < steps; ++s) {
            auto b = task.sample(32, rng);
            opt.zero_grad();
            Tensor logits = model.logits(b.x, true);
            auto res = nn::softmax_cross_entropy(logits, b.labels);
            model.backward(res.grad);
            opt.step();
        }
        return model;
    };

    ResNetMini fp = train(nn::QuantSpec::fp32());
    ResNetMini mx = train(nn::QuantSpec::uniform(core::mx9()));
    Row r{"CNN-residual (images)", "Top-1", 0, 0, 0, 0, 0, true};
    r.fp32 = acc(fp);
    r.mx9_train = acc(mx);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    r.cast_mx9 = acc(fp);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx6()));
    r.cast_mx6 = acc(fp);
    // Fine-tune the cast model in place.
    fp.set_spec(recipe_spec(Recipe::FineTune, core::mx6()));
    nn::Adam opt(fp.params(), 1e-3);
    stats::Rng rng(301);
    for (int s = 0; s < steps / 3; ++s) {
        auto b = task.sample(32, rng);
        opt.zero_grad();
        Tensor logits = fp.logits(b.x, true);
        auto res = nn::softmax_cross_entropy(logits, b.labels);
        fp.backward(res.grad);
        opt.step();
    }
    r.finetune_mx6 = acc(fp);
    return r;
}

/** Encoder-transformer family (BERT stand-in, classification head). */
Row
run_bert()
{
    data::PatternSequences task(2, 32, 12, 44);
    TransformerConfig cfg;
    cfg.vocab = 32;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seq_len = 12;
    cfg.seed = 9;
    const int steps = static_cast<int>(bench::scaled(150, 25));
    auto acc = [&](BertMini& m) {
        stats::Rng rng(202);
        auto e = task.sample(512, rng);
        Tensor logits = m.class_logits(e, false);
        return stats::top1_accuracy(e.labels, logits.vec(), 2);
    };
    auto train = [&](nn::QuantSpec spec) {
        TransformerConfig c = cfg;
        c.spec = spec;
        BertMini model(c, 2);
        nn::Adam opt(model.params(), 3e-3);
        stats::Rng rng(102);
        for (int s = 0; s < steps; ++s) {
            auto b = task.sample(16, rng);
            opt.zero_grad();
            Tensor logits = model.class_logits(b, true);
            auto res = nn::softmax_cross_entropy(logits, b.labels);
            model.class_backward(res.grad);
            opt.step();
        }
        return model;
    };

    BertMini fp = train(nn::QuantSpec::fp32());
    BertMini mx = train(nn::QuantSpec::uniform(core::mx9()));
    Row r{"Transformer-enc (cls)", "Top-1", 0, 0, 0, 0, 0, true};
    r.fp32 = acc(fp);
    r.mx9_train = acc(mx);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    r.cast_mx9 = acc(fp);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx6()));
    r.cast_mx6 = acc(fp);
    fp.set_spec(recipe_spec(Recipe::FineTune, core::mx6()));
    nn::Adam opt(fp.params(), 1e-3);
    stats::Rng rng(302);
    for (int s = 0; s < steps / 3; ++s) {
        auto b = task.sample(16, rng);
        opt.zero_grad();
        Tensor logits = fp.class_logits(b, true);
        auto res = nn::softmax_cross_entropy(logits, b.labels);
        fp.class_backward(res.grad);
        opt.step();
    }
    r.finetune_mx6 = acc(fp);
    return r;
}

/** Recurrent family (GNMT stand-in): seq2seq translation BLEU. */
Row
run_lstm()
{
    Seq2SeqConfig cfg;
    cfg.vocab = 12;
    cfg.embed_dim = 24;
    cfg.hidden_dim = 48;
    cfg.seq_len = 5;
    cfg.seed = 10;
    data::TranslationPairs task(cfg.vocab, cfg.seq_len, 45);
    const int steps = static_cast<int>(bench::scaled(250, 40));
    auto bleu_of = [&](LstmSeq2Seq& m) {
        stats::Rng rng(203);
        auto e = task.sample(24, rng);
        return m.bleu(e, task);
    };
    auto train = [&](nn::QuantSpec spec) {
        Seq2SeqConfig c = cfg;
        c.spec = spec;
        LstmSeq2Seq model(c);
        nn::Adam opt(model.params(), 4e-3);
        stats::Rng rng(103);
        for (int s = 0; s < steps; ++s) {
            auto b = task.sample(24, rng);
            opt.zero_grad();
            model.train_loss(b);
            opt.clip_grad_norm(5.0);
            opt.step();
        }
        return model;
    };

    LstmSeq2Seq fp = train(nn::QuantSpec::fp32());
    LstmSeq2Seq mx = train(nn::QuantSpec::uniform(core::mx9()));
    Row r{"LSTM seq2seq (transl)", "BLEU", 0, 0, 0, 0, 0, true};
    r.fp32 = bleu_of(fp);
    r.mx9_train = bleu_of(mx);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    r.cast_mx9 = bleu_of(fp);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx6()));
    r.cast_mx6 = bleu_of(fp);
    fp.set_spec(recipe_spec(Recipe::FineTune, core::mx6()));
    nn::Adam opt(fp.params(), 1e-3);
    stats::Rng rng(303);
    for (int s = 0; s < steps / 3; ++s) {
        auto b = task.sample(24, rng);
        opt.zero_grad();
        fp.train_loss(b);
        opt.clip_grad_norm(5.0);
        opt.step();
    }
    r.finetune_mx6 = bleu_of(fp);
    return r;
}

/** Recommendation family (DLRM stand-in): AUC, MX storage + compute. */
Row
run_dlrm()
{
    DlrmConfig cfg;
    cfg.seed = 11;
    data::ClickLogs task(cfg.num_tables, cfg.vocab_per_table,
                         cfg.dense_dim, 46);
    const int steps = static_cast<int>(bench::scaled(250, 40));
    auto auc_of = [&](DlrmMini& m) {
        stats::Rng rng(204);
        auto e = task.sample(4096, rng);
        return stats::auc(e.labels, m.predict(e));
    };
    auto train = [&](nn::QuantSpec spec) {
        DlrmConfig c = cfg;
        c.spec = spec;
        DlrmMini model(c);
        nn::Adam opt(model.params(), 4e-3);
        stats::Rng rng(104);
        for (int s = 0; s < steps; ++s) {
            auto b = task.sample(64, rng);
            opt.zero_grad();
            model.train_loss(b);
            opt.step();
        }
        return model;
    };

    DlrmMini fp = train(nn::QuantSpec::fp32());
    DlrmMini mx = train(nn::QuantSpec::uniform(core::mx9()));
    Row r{"DLRM (click logs)", "AUC", 0, 0, 0, 0, 0, true};
    r.fp32 = auc_of(fp);
    r.mx9_train = auc_of(mx);
    // Direct cast quantizes embedding storage *and* MLP compute (Sec V).
    fp.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    fp.set_embedding_storage(core::mx9());
    r.cast_mx9 = auc_of(fp);
    fp.set_spec(nn::QuantSpec::forward_only(core::mx6()));
    fp.set_embedding_storage(core::mx6());
    r.cast_mx6 = auc_of(fp);
    nn::Adam opt(fp.params(), 1e-3);
    fp.set_spec(recipe_spec(Recipe::FineTune, core::mx6()));
    stats::Rng rng(304);
    for (int s = 0; s < steps / 3; ++s) {
        auto b = task.sample(64, rng);
        opt.zero_grad();
        fp.train_loss(b);
        opt.step();
    }
    r.finetune_mx6 = auc_of(fp);
    return r;
}

} // namespace

int
main()
{
    bench::Report report("table3_models");
    bench::banner("Table III (shape): training and inferencing with MX");
    std::printf("%-22s %-10s %9s %9s %9s %9s %9s\n", "Task", "Metric",
                "FP32", "MX9-trn", "cast-MX9", "cast-MX6", "ft-MX6");
    // The five family runs are independent (each owns its task, models,
    // and fixed-seed RNG streams), so they shard across the thread pool;
    // results are bit-identical for any MX_THREADS value.
    const std::vector<std::function<Row()>> families = {
        run_mlp, run_cnn, run_bert, run_lstm, run_dlrm};
    std::vector<Row> rows(families.size());
    core::ThreadPool::shared().parallel_for(
        families.size(), [&](std::size_t i) { rows[i] = families[i](); });
    bool ok = true;
    for (const Row& r : rows) {
        print_row(r);
        report.metric(r.task + " fp32", r.fp32, r.metric);
        report.metric(r.task + " mx9_train", r.mx9_train, r.metric);
        report.metric(r.task + " cast_mx9", r.cast_mx9, r.metric);
        report.metric(r.task + " cast_mx6", r.cast_mx6, r.metric);
        report.metric(r.task + " finetune_mx6", r.finetune_mx6, r.metric);
        // Qualitative claims: MX9 training and MX9 direct cast within a
        // small tolerance of the FP32 run (drop-in replacement).
        double scale = std::max(std::fabs(r.fp32), 1e-9);
        bool family_ok = std::fabs(r.mx9_train - r.fp32) / scale < 0.15 &&
                         std::fabs(r.cast_mx9 - r.fp32) / scale < 0.10;
        report.flag(r.task + " mx9_drop_in", family_ok);
        ok &= family_ok;
    }
    std::printf("\nMX9 ~ FP32 for training and direct-cast inference "
                "across all families: %s\n", ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
