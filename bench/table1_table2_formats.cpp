/**
 * @file
 * Reproduces Table I (the two-level-scaling taxonomy) and Table II (the
 * MX4/MX6/MX9 definitions with average bits per element), plus the
 * memory-packing detail behind Section IV-B.
 */

#include <cstdio>

#include "bench_report.h"
#include "core/bdr_format.h"
#include "hw/memory_model.h"

using namespace mx;
using namespace mx::core;

int
main()
{
    bench::Report report("table1_table2_formats");
    bench::banner("Table I: formats under the two-level scaling framework");
    std::printf("%-12s %-10s %-10s %-10s %-10s %-8s %-8s\n", "Format",
                "Scale", "Sub-scale", "s type", "ss type", "k1", "k2");
    struct Row
    {
        const char* name;
        const char* scale;
        const char* sub;
        const char* s_type;
        const char* ss_type;
        const char* k1;
        const char* k2;
    };
    const Row rows[] = {
        {"INT", "SW", "-", "FP32", "-", "~1K", "-"},
        {"MSFP/BFP", "HW", "-", "2^z", "-", "~10", "-"},
        {"FP8", "SW", "HW", "FP32", "2^z", "~10K", "1"},
        {"VSQ", "SW", "HW", "FP32", "INT", "~1K", "~10"},
        {"MX", "HW", "HW", "2^z", "2^z", "~10", "~1"},
    };
    for (const Row& r : rows)
        std::printf("%-12s %-10s %-10s %-10s %-10s %-8s %-8s\n", r.name,
                    r.scale, r.sub, r.s_type, r.ss_type, r.k1, r.k2);

    bench::banner("Table II: the three basic MX data formats");
    std::printf("%-28s %8s %8s %8s\n", "", "MX9", "MX6", "MX4");
    BdrFormat f9 = mx9(), f6 = mx6(), f4 = mx4();
    std::printf("%-28s %8d %8d %8d\n", "Block granularity k1", f9.k1,
                f6.k1, f4.k1);
    std::printf("%-28s %8d %8d %8d\n", "Sub-block granularity k2", f9.k2,
                f6.k2, f4.k2);
    std::printf("%-28s %8d %8d %8d\n", "Scale bit-width d1", f9.d1, f6.d1,
                f4.d1);
    std::printf("%-28s %8d %8d %8d\n", "Sub-scale bit-width d2", f9.d2,
                f6.d2, f4.d2);
    std::printf("%-28s %8d %8d %8d\n", "Mantissa bit-width m", f9.m, f6.m,
                f4.m);
    std::printf("%-28s %8.0f %8.0f %8.0f  (paper: 9 / 6 / 4)\n",
                "Average bits per element", f9.bits_per_element(),
                f6.bits_per_element(), f4.bits_per_element());

    bench::banner("Section IV-B: 256-element tile into a 64B interface");
    hw::MemoryModel mm;
    std::printf("%-14s %10s %8s %10s %10s\n", "Format", "bits", "beats",
                "pack-eff", "norm-cost");
    for (const auto& f : {mx9(), mx6(), mx4(), msfp16(), msfp12(),
                          fp8_e4m3(), scaled_int(4), vsq(4, 4)}) {
        hw::TilePacking t = mm.pack_tile(f);
        std::printf("%-14s %10zu %8zu %9.1f%% %10.3f\n", f.name.c_str(),
                    t.payload_bits, t.beats, 100.0 * t.packing_efficiency,
                    mm.normalized_cost(f));
        report.metric("packing_efficiency_" + f.name,
                      t.packing_efficiency);
    }

    report.metric("bits_per_element_mx9", f9.bits_per_element(), "bits");
    report.metric("bits_per_element_mx6", f6.bits_per_element(), "bits");
    report.metric("bits_per_element_mx4", f4.bits_per_element(), "bits");

    bool ok = f9.bits_per_element() == 9 && f6.bits_per_element() == 6 &&
              f4.bits_per_element() == 4;
    report.flag("table2_bits_per_element", ok);
    std::printf("\nTable II bits-per-element: %s\n",
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
