/**
 * @file
 * Packed-domain GEMM microbench (the Figure 6 execution pipeline as a
 * software kernel): for each MX format, C = A * B^T throughput of
 *
 *   dequant: the PR 3 frozen serving matmul — quantize the activations,
 *            then tensor::matmul_nt against the frozen FP32 grid tensor;
 *   packed:  gemm::matmul_nt_packed — quantize the activations into the
 *            integer execution view and multiply the weight bit
 *            stream's mantissas directly (no FP32 weight copy).
 *
 * Also reports the packed path's QSNR against the FP32 matmul oracle
 * (pinned per format), scalar/AVX2/AVX-512 bit-identity checks,
 * ragged-width correctness, an MX_GEMM_THREADS sweep over decode- and
 * prefill-shaped GEMMs (slot-named t1/t2/t4/tpool so baselines compare
 * across machines, with a bytes-touched-per-MAC arithmetic-intensity
 * metric and a bit-identity-across-lane-counts flag), and the
 * weight-memory story (FP32 bytes vs packed stream vs execution view).
 * Emits BENCH_gemm_packed.json.
 *
 *   $ ./bench/gemm_packed
 */

#include <cmath>
#include <cstdio>

#include "bench_report.h"
#include "core/kernels/dispatch.h"
#include "core/thread_pool.h"
#include "gemm/packed_gemm.h"
#include "nn/frozen.h"
#include "nn/quant.h"
#include "stats/rng.h"

using namespace mx;
using tensor::Tensor;

namespace {

/** Naive double-accumulation FP32 oracle for C = A * B^T. */
Tensor
oracle_matmul_nt(const Tensor& a, const Tensor& b)
{
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    Tensor c({m, n});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<double>(a.data()[i * k + kk]) *
                       b.data()[j * k + kk];
            c.data()[i * n + j] = static_cast<float>(acc);
        }
    return c;
}

double
qsnr_db(const Tensor& ref, const Tensor& test)
{
    double sig = 0.0, noise = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        const double r = ref.data()[i];
        const double d = r - static_cast<double>(test.data()[i]);
        sig += r * r;
        noise += d * d;
    }
    return noise == 0.0 ? 300.0 : 10.0 * std::log10(sig / noise);
}

double
max_abs(const Tensor& t)
{
    double m = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(t.data()[i])));
    return m;
}

/** QSNR floors mirroring tests/test_gemm.cpp (measured ~43/25/13 dB). */
double
qsnr_floor(const std::string& name)
{
    if (name == "MX9")
        return 35.0;
    if (name == "MX6")
        return 18.0;
    return 8.0; // MX4
}

} // namespace

int
main()
{
    bench::Report report("gemm_packed");
    bool ok = true;

    const std::int64_t M = static_cast<std::int64_t>(bench::scaled(16, 8));
    const std::int64_t K = static_cast<std::int64_t>(bench::scaled(256, 128));
    const std::int64_t N = static_cast<std::int64_t>(bench::scaled(256, 128));
    const std::size_t macs =
        static_cast<std::size_t>(M) * static_cast<std::size_t>(K) *
        static_cast<std::size_t>(N);

    const bool profitable = gemm::packed_profitable();
    std::printf("packed-GEMM kernel: %s (%s)\n",
                gemm::active_gemm_kernel().name(),
                profitable ? "packed path profitable"
                           : "scalar reference leg");
    report.metric("gemm_shape_m", static_cast<double>(M));
    report.metric("gemm_shape_k", static_cast<double>(K));
    report.metric("gemm_shape_n", static_cast<double>(N));

    bench::banner("C = A * B^T: dequantized matmul vs packed domain");
    std::printf("%-6s %14s %14s %9s %10s\n", "fmt", "dequant MACs/s",
                "packed MACs/s", "speedup", "QSNR dB");

    stats::Rng rng(81);
    for (const auto& fmt : {core::mx9(), core::mx6(), core::mx4()}) {
        Tensor x = Tensor::randn({M, K}, rng, 1.0f);
        Tensor w = Tensor::randn({N, K}, rng, 0.3f);
        const core::kernels::QuantPlan plan =
            core::kernels::make_quant_plan(fmt);
        nn::FrozenTensor f = nn::FrozenTensor::build(w, fmt);

        bench::BenchResult dequant = bench::run_bench(
            [&]() {
                Tensor qx = nn::quantize_rows(x, fmt);
                bench::do_not_optimize(tensor::matmul_nt(qx, f.values()));
            },
            macs);
        bench::BenchResult packed = bench::run_bench(
            [&]() {
                bench::do_not_optimize(
                    gemm::matmul_nt_packed(x, plan, *f.gemm_operand()));
            },
            macs);

        Tensor got = gemm::matmul_nt_packed(x, plan, *f.gemm_operand());
        const double db = qsnr_db(oracle_matmul_nt(x, w), got);
        const double speedup =
            packed.items_per_sec / dequant.items_per_sec;
        std::printf("%-6s %14.3e %14.3e %8.2fx %9.2f\n",
                    fmt.name.c_str(), dequant.items_per_sec,
                    packed.items_per_sec, speedup, db);

        report.bench_result("gemm_" + fmt.name + "_dequant", dequant);
        report.bench_result("gemm_" + fmt.name + "_packed", packed);
        report.metric("gemm_" + fmt.name + "_packed_speedup", speedup,
                      "x");
        report.metric("gemm_" + fmt.name + "_qsnr", db, "dB");
        const bool fmt_ok = db >= qsnr_floor(fmt.name);
        report.flag("gemm_" + fmt.name + "_qsnr_floor", fmt_ok);
        ok = ok && fmt_ok;
        if (profitable) {
            // The speed claim is only meaningful on the SIMD leg — the
            // scalar packed kernel is a reference, not a fast path.
            const bool fast_ok = speedup >= 1.0;
            report.flag("gemm_" + fmt.name + "_packed_ge_dequant",
                        fast_ok);
            ok = ok && fast_ok;
        }
    }

    // ------------------------------------------------------------------
    // Correctness spot checks shared with the test suite.
    // ------------------------------------------------------------------
    bench::banner("correctness: ragged widths + kernel bit-identity");
    {
        const std::int64_t rk = 67; // 4 blocks + 3-element ragged tail
        Tensor x = Tensor::randn({5, rk}, rng, 1.0f);
        Tensor w = Tensor::randn({9, rk}, rng, 0.3f);
        const auto fmt = core::mx9();
        const core::kernels::QuantPlan plan =
            core::kernels::make_quant_plan(fmt);
        nn::FrozenTensor f = nn::FrozenTensor::build(w, fmt);
        Tensor got = gemm::matmul_nt_packed(x, plan, *f.gemm_operand());
        Tensor ref =
            tensor::matmul_nt(nn::quantize_rows(x, fmt), f.values());
        const bool ragged_ok =
            tensor::max_abs_diff(got, ref) <=
            1e-5 * std::max(max_abs(ref), 1e-20);
        std::printf("  ragged K=%lld matches dequantized reference: %s\n",
                    static_cast<long long>(rk), ragged_ok ? "yes" : "NO");
        report.flag("gemm_ragged_matches_reference", ragged_ok);
        ok = ok && ragged_ok;

        bool identical = true;
        if (gemm::avx2_gemm_kernel() != nullptr &&
            core::kernels::avx2_supported()) {
            core::Rounder rounder;
            const auto a = gemm::PackedOperand::quantize(
                plan, x.data(), 5, static_cast<std::size_t>(rk), rounder);
            const auto b = gemm::PackedOperand::quantize(
                plan, w.data(), 9, static_cast<std::size_t>(rk), rounder);
            const gemm::GemmPlan gp = gemm::make_gemm_plan(plan, plan);
            Tensor cs({5, 9}), cv({5, 9});
            gemm::scalar_gemm_kernel().gemm(gp, a, b, cs.data());
            gemm::avx2_gemm_kernel()->gemm(gp, a, b, cv.data());
            identical = tensor::max_abs_diff(cs, cv) == 0.0;
            std::printf("  scalar vs AVX2 bit-identical: %s\n",
                        identical ? "yes" : "NO");
        } else {
            std::printf("  scalar vs AVX2 bit-identical: skipped "
                        "(no AVX2 on this host)\n");
        }
        report.flag("gemm_scalar_avx2_bit_identical", identical);
        ok = ok && identical;

        bool identical512 = true;
        if (gemm::avx512_gemm_kernel() != nullptr &&
            core::kernels::avx512_supported()) {
            core::Rounder rounder;
            const auto a = gemm::PackedOperand::quantize(
                plan, x.data(), 5, static_cast<std::size_t>(rk), rounder);
            const auto b = gemm::PackedOperand::quantize(
                plan, w.data(), 9, static_cast<std::size_t>(rk), rounder);
            const gemm::GemmPlan gp = gemm::make_gemm_plan(plan, plan);
            Tensor cs({5, 9}), cv({5, 9});
            gemm::scalar_gemm_kernel().gemm(gp, a, b, cs.data());
            gemm::avx512_gemm_kernel()->gemm(gp, a, b, cv.data());
            identical512 = tensor::max_abs_diff(cs, cv) == 0.0;
            std::printf("  scalar vs AVX-512 bit-identical: %s\n",
                        identical512 ? "yes" : "NO");
        } else {
            std::printf("  scalar vs AVX-512 bit-identical: skipped "
                        "(no AVX-512/VNNI on this host)\n");
        }
        report.flag("gemm_scalar_avx512_bit_identical", identical512);
        ok = ok && identical512;
    }

    // ------------------------------------------------------------------
    // Thread sweep (MX_GEMM_THREADS): output tiles shard across lanes.
    // Slots are NAMED (t1/t2/t4/tpool), not thread-count-keyed, so a
    // baseline recorded on one machine compares on another; results
    // must stay bit-identical at every lane count.
    // ------------------------------------------------------------------
    bench::banner("MX_GEMM_THREADS sweep: decode + prefill shapes (MX9)");
    {
        const auto fmt = core::mx9();
        const core::kernels::QuantPlan plan =
            core::kernels::make_quant_plan(fmt);
        const gemm::GemmPlan gp = gemm::make_gemm_plan(plan, plan);
        const std::size_t pool = core::ThreadPool::default_thread_count();
        struct Slot
        {
            const char* name;
            std::size_t threads;
        };
        const Slot slots[] = {
            {"t1", 1}, {"t2", 2}, {"t4", 4}, {"tpool", pool}};
        struct Shape
        {
            const char* name;
            std::int64_t m, k, n;
        };
        const Shape shapes[] = {
            // Decode: one small activation batch against a wide cache.
            {"decode", 8, 256, 256},
            // Prefill: a full-sequence batch — the shape threading pays
            // for (many output tiles, each with a deep contraction).
            {"prefill", static_cast<std::int64_t>(bench::scaled(128, 48)),
             static_cast<std::int64_t>(bench::scaled(512, 192)),
             static_cast<std::int64_t>(bench::scaled(512, 192))}};
        std::printf("  pool lanes on this host: %zu\n\n", pool);
        std::printf("%-8s %6s %14s %9s\n", "shape", "slot", "MACs/s",
                    "vs t1");
        for (const Shape& s : shapes) {
            Tensor x = Tensor::randn({s.m, s.k}, rng, 1.0f);
            Tensor y = Tensor::randn({s.n, s.k}, rng, 0.3f);
            core::Rounder rounder;
            const auto a = gemm::PackedOperand::quantize(
                plan, x.data(), static_cast<std::size_t>(s.m),
                static_cast<std::size_t>(s.k), rounder);
            const auto b = gemm::PackedOperand::quantize(
                plan, y.data(), static_cast<std::size_t>(s.n),
                static_cast<std::size_t>(s.k), rounder);
            const std::size_t smacs = static_cast<std::size_t>(s.m) *
                                      static_cast<std::size_t>(s.k) *
                                      static_cast<std::size_t>(s.n);
            // Arithmetic intensity of the packed execution: operand
            // views in, FP32 C out, per multiply-accumulate.
            const double bytes_touched =
                static_cast<double>(a.memory_bytes()) +
                static_cast<double>(b.memory_bytes()) +
                static_cast<double>(s.m) * static_cast<double>(s.n) *
                    sizeof(float);
            report.metric(std::string("gemm_sweep_") + s.name +
                              "_bytes_per_mac",
                          bytes_touched / static_cast<double>(smacs),
                          "B/MAC");

            gemm::set_gemm_threads(1);
            Tensor base = gemm::matmul_nt_prequant(gp, a, b);
            double t1_rate = 0.0, pool_rate = 0.0;
            bool identical = true;
            for (const Slot& sl : slots) {
                gemm::set_gemm_threads(sl.threads);
                bench::BenchResult r = bench::run_bench(
                    [&]() {
                        bench::do_not_optimize(
                            gemm::matmul_nt_prequant(gp, a, b));
                    },
                    smacs);
                Tensor out = gemm::matmul_nt_prequant(gp, a, b);
                identical =
                    identical && tensor::max_abs_diff(out, base) == 0.0;
                if (sl.threads == 1)
                    t1_rate = r.items_per_sec;
                if (sl.threads == pool)
                    pool_rate = r.items_per_sec;
                std::printf("%-8s %6s %14.3e %8.2fx\n", s.name, sl.name,
                            r.items_per_sec,
                            t1_rate > 0.0 ? r.items_per_sec / t1_rate
                                          : 1.0);
                report.bench_result(std::string("gemm_sweep_") + s.name +
                                        "_" + sl.name,
                                    r);
            }
            gemm::set_gemm_threads(0); // back to the env resolution
            report.flag(std::string("gemm_sweep_") + s.name +
                            "_bit_identical",
                        identical);
            ok = ok && identical;
            if (std::string(s.name) == "prefill" && pool >= 2) {
                // The scaling claim needs lanes to scale across — on a
                // single-CPU host the key is absent (the compare gate
                // treats pool-conditional keys as notes, not misses).
                const double scale = pool_rate / t1_rate;
                report.metric("gemm_prefill_pool_speedup", scale, "x");
                const bool scale_ok = scale >= 2.0;
                report.flag("gemm_prefill_pool_ge_2x_t1", scale_ok);
                ok = ok && scale_ok;
            }
        }
    }

    // ------------------------------------------------------------------
    // The weight-memory story: what a frozen MX9 layer holds per path.
    // ------------------------------------------------------------------
    bench::banner("frozen MX9 weight memory per execution path");
    {
        Tensor w = Tensor::randn({N, K}, rng, 0.3f);
        nn::FrozenTensor f = nn::FrozenTensor::build(w, core::mx9());
        const double fp32_bytes =
            static_cast<double>(w.numel()) * sizeof(float);
        const double stream_bytes =
            static_cast<double>(f.packed()->bytes.size());
        const double view_bytes =
            static_cast<double>(f.gemm_operand()->memory_bytes());
        std::printf("  FP32 grid tensor : %10.0f bytes\n", fp32_bytes);
        std::printf("  packed bit stream: %10.0f bytes (%.2f bits/elem)\n",
                    stream_bytes, f.bits_per_element());
        std::printf("  gemm int16 view  : %10.0f bytes\n", view_bytes);
        report.metric("gemm_weight_fp32_bytes", fp32_bytes, "bytes");
        report.metric("gemm_weight_stream_bytes", stream_bytes, "bytes");
        report.metric("gemm_weight_view_bytes", view_bytes, "bytes");
        const bool mem_ok = view_bytes < fp32_bytes;
        report.flag("gemm_view_smaller_than_fp32", mem_ok);
        ok = ok && mem_ok;
    }

    std::printf("\nthe Figure 6 pipeline in software: mantissa "
                "multiplies, a little shifting, one alignment per "
                "block — no dequantized weights.\n");
    return report.finish(ok);
}
