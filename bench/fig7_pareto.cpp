/**
 * @file
 * Reproduces Figure 7: QSNR (10K vectors of X ~ N(0, |N(0,1)|)) versus
 * the normalized area-memory efficiency product for all named formats
 * plus the full 800+ configuration BDR sweep with Pareto-frontier
 * extraction.  Emits fig7_sweep.csv for plotting ($MX_BENCH_OUT_DIR
 * or the working directory, like the JSON report).
 *
 * Headline claims checked:
 *   - MX9 QSNR ~ FP8(E4M3) + ~16 dB at comparable cost
 *   - MX6 QSNR between the two FP8 variants at ~2x lower cost
 *   - MX9 ~ MSFP16 + ~3.6 dB
 *   - MX4/MX6/MX9 sit on (or within ~1 dB of) the BDR Pareto frontier
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_report.h"
#include "core/thread_pool.h"
#include "sweep/design_space.h"

using namespace mx;
using namespace mx::core;
using namespace mx::sweep;

int
main()
{
    bench::Report report("fig7_pareto");
    QsnrRunConfig qcfg;
    qcfg.num_vectors = bench::scaled(6000, 300);
    qcfg.vector_length = 1024;
    hw::CostModel cost;

    bench::banner("Figure 7 named design points");
    std::printf("%-18s %8s %8s %8s %10s\n", "Format", "QSNR dB",
                "area", "memory", "area*mem");

    // Named formats, with VSQ reported best-of-d2 as in the paper.
    struct Named
    {
        BdrFormat fmt;
        double qsnr;
        hw::CostPoint cost;
    };
    std::vector<Named> named;
    double best_vsq[17] = {};
    hw::CostPoint best_vsq_cost[17];
    // Measure every named format in parallel (each index writes its own
    // slot and measure_qsnr_db re-seeds per call, so the thread count
    // cannot change a single number), then aggregate serially.
    core::ThreadPool& pool = core::ThreadPool::shared();
    const auto fig7_fmts = figure7_formats();
    std::vector<double> fmt_qsnr(fig7_fmts.size());
    std::vector<hw::CostPoint> fmt_cost(fig7_fmts.size());
    pool.parallel_for(fig7_fmts.size(), [&](std::size_t i) {
        fmt_qsnr[i] = measure_qsnr_db(fig7_fmts[i], qcfg);
        fmt_cost[i] = cost.evaluate(fig7_fmts[i]);
    });
    for (std::size_t i = 0; i < fig7_fmts.size(); ++i) {
        const auto& f = fig7_fmts[i];
        double q = fmt_qsnr[i];
        hw::CostPoint c = fmt_cost[i];
        if (f.name.rfind("VSQ", 0) == 0) {
            int bits = f.m + 1;
            if (q > best_vsq[bits] || best_vsq[bits] == 0) {
                best_vsq[bits] = q;
                best_vsq_cost[bits] = c;
            }
            continue;
        }
        named.push_back({f, q, c});
    }
    for (int bits : {4, 6, 8}) {
        Named n;
        n.fmt = vsq(bits, 8);
        n.fmt.name = "VSQ" + std::to_string(bits);
        n.qsnr = best_vsq[bits];
        n.cost = best_vsq_cost[bits];
        named.push_back(n);
    }
    for (const auto& n : named)
        std::printf("%-18s %8.2f %8.3f %8.3f %10.3f\n",
                    n.fmt.name.c_str(), n.qsnr, n.cost.normalized_area,
                    n.cost.normalized_memory, n.cost.area_memory_product);

    auto find = [&](const std::string& name) -> const Named& {
        for (const auto& n : named)
            if (n.fmt.name == name)
                return n;
        std::fprintf(stderr, "missing %s\n", name.c_str());
        std::exit(2);
    };
    const Named& m9 = find("MX9");
    const Named& m6 = find("MX6");
    const Named& e4m3 = find("FP8 (E4M3)");
    const Named& e5m2 = find("FP8 (E5M2)");
    const Named& ms16 = find("MSFP16");

    bench::banner("Full BDR sweep + Pareto frontier");
    SweepSpec spec;
    QsnrRunConfig sweep_cfg = qcfg;
    sweep_cfg.num_vectors = bench::scaled(800, 100);
    sweep_cfg.vector_length = 512;
    auto formats = enumerate_formats(spec);
    std::printf("evaluating %zu configurations "
                "(%zu vectors x %zu elements each)...\n", formats.size(),
                sweep_cfg.num_vectors, sweep_cfg.vector_length);
    auto points = evaluate(formats, sweep_cfg, cost);

    std::size_t frontier = 0;
    for (const auto& p : points)
        frontier += p.on_pareto_frontier ? 1 : 0;
    std::printf("Pareto frontier members: %zu of %zu\n", frontier,
                points.size());

    const std::string csv_path = bench::output_file("fig7_sweep.csv");
    std::ofstream csv(csv_path);
    csv << DesignPoint::csv_header() << "\n";
    for (const auto& p : points)
        csv << p.csv_row() << "\n";
    csv.flush();
    const bool csv_ok = csv.good();
    if (csv_ok)
        std::printf("wrote %s\n", csv_path.c_str());
    else
        std::fprintf(stderr, "fig7_pareto: cannot write %s\n",
                     csv_path.c_str());

    // How close are the Table II picks to the frontier?  (The paper
    // notes MX9 is deliberately slightly off-frontier for HW reuse.)
    auto frontier_gap = [&](const char* name) {
        const Named& n = find(name);
        double best = -1e30;
        for (const auto& p : points)
            if (p.cost.area_memory_product <=
                n.cost.area_memory_product * 1.0001)
                best = std::max(best, p.qsnr_db);
        return best - n.qsnr;
    };
    bench::banner("Headline checks");
    double mx9_vs_fp8 = m9.qsnr - e4m3.qsnr;
    double mx9_vs_msfp16 = m9.qsnr - ms16.qsnr;
    std::printf("MX9 - FP8(E4M3) QSNR: %+.1f dB (paper: ~+16)\n",
                mx9_vs_fp8);
    std::printf("MX9 - MSFP16 QSNR:    %+.1f dB (paper: ~+3.6)\n",
                mx9_vs_msfp16);
    std::printf("MX6 between FP8 variants: E5M2 %.1f <= MX6 %.1f ~ E4M3 "
                "%.1f (paper: between)\n", e5m2.qsnr, m6.qsnr, e4m3.qsnr);
    std::printf("MX6 cost advantage vs FP8: %.1fx (paper: ~2x)\n",
                1.0 / m6.cost.area_memory_product);
    double gap9 = frontier_gap("MX9"), gap6 = frontier_gap("MX6"),
           gap4 = frontier_gap("MX4");
    std::printf("MX9/MX6/MX4 gap to Pareto frontier at equal cost: "
                "%.2f / %.2f / %.2f dB\n", gap9, gap6, gap4);

    for (const auto& n : named) {
        report.metric("qsnr_" + n.fmt.name, n.qsnr, "dB");
        report.metric("area_mem_product_" + n.fmt.name,
                      n.cost.area_memory_product);
    }
    report.metric("sweep_configurations",
                  static_cast<double>(points.size()));
    report.metric("pareto_frontier_members",
                  static_cast<double>(frontier));
    report.metric("mx_threads", static_cast<double>(pool.thread_count()));
    report.metric("mx9_minus_fp8_e4m3_qsnr", mx9_vs_fp8, "dB");
    report.metric("mx9_minus_msfp16_qsnr", mx9_vs_msfp16, "dB");
    report.metric("frontier_gap_mx9", gap9, "dB");
    report.metric("frontier_gap_mx6", gap6, "dB");
    report.metric("frontier_gap_mx4", gap4, "dB");

    bool ok = mx9_vs_fp8 > 10.0 && mx9_vs_fp8 < 25.0 &&
              mx9_vs_msfp16 > 2.0 && mx9_vs_msfp16 < 6.0 &&
              m6.qsnr > e5m2.qsnr &&
              1.0 / m6.cost.area_memory_product > 1.8;
    report.flag("figure7_shape", ok);
    std::printf("\nFigure 7 shape: %s\n", ok ? "REPRODUCED" : "MISMATCH");
    // A missing plotting artifact fails the run just like a missing
    // JSON report would.
    int rc = report.finish(ok);
    return csv_ok ? rc : 1;
}
