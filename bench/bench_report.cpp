/**
 * @file
 * Implementation of the bench JSON reporter and micro-bench runner.
 */

#include "bench_report.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace mx {
namespace bench {

namespace detail {

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

BenchResult
run_bench_impl(void (*step)(void*), void* ctx, std::size_t items_per_iter,
               double min_sec)
{
    // Warm-up: also seeds the calibration estimate.
    step(ctx);
    std::uint64_t t0 = now_ns();
    step(ctx);
    std::uint64_t once = now_ns() - t0;
    if (once == 0)
        once = 1;

    const double target_ns = min_sec * 1e9;
    std::uint64_t iters =
        static_cast<std::uint64_t>(target_ns / static_cast<double>(once));
    if (iters < 1)
        iters = 1;

    // Grow the batch until the timed region is long enough; cap the
    // doublings so a mis-calibrated first probe cannot spin forever.
    for (int attempt = 0; attempt < 8; ++attempt) {
        t0 = now_ns();
        for (std::uint64_t i = 0; i < iters; ++i)
            step(ctx);
        std::uint64_t elapsed = now_ns() - t0;
        if (static_cast<double>(elapsed) >= target_ns * 0.8 ||
            attempt == 7)
            break;
        iters *= 2;
    }

    // Repeat the calibrated batch and keep the fastest pass — the
    // least-noise estimator — so a scheduler hiccup in one pass does
    // not pollute the recorded baseline.
    const int reps = 3;
    std::uint64_t best = 0;
    for (int r = 0; r < reps; ++r) {
        t0 = now_ns();
        for (std::uint64_t i = 0; i < iters; ++i)
            step(ctx);
        std::uint64_t elapsed = now_ns() - t0;
        if (r == 0 || elapsed < best)
            best = elapsed;
    }

    BenchResult res;
    res.iterations = iters;
    res.ns_per_iter =
        static_cast<double>(best) / static_cast<double>(iters);
    res.items_per_sec = res.ns_per_iter > 0
        ? static_cast<double>(items_per_iter) * 1e9 / res.ns_per_iter
        : 0.0;
    return res;
}

namespace {

/** JSON string escaping for metric names (quotes, backslash, control). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Format a double as JSON (NaN/Inf are not valid JSON; emit null). */
std::string
json_number(double v)
{
    if (v != v || v > 1.7e308 || v < -1.7e308)
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/** Lowercase [a-z0-9_] slug: "FP8 (E4M3)" -> "fp8_e4m3". */
std::string
slugify(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    bool pending_sep = false;
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        if ((u >= 'a' && u <= 'z') || (u >= '0' && u <= '9')) {
            if (pending_sep && !out.empty())
                out += '_';
            pending_sep = false;
            out += c;
        } else if (u >= 'A' && u <= 'Z') {
            if (pending_sep && !out.empty())
                out += '_';
            pending_sep = false;
            out += static_cast<char>(c - 'A' + 'a');
        } else {
            pending_sep = true;
        }
    }
    return out;
}

} // namespace

} // namespace detail

Report::Report(std::string name)
    : name_(std::move(name)), start_ns_(detail::now_ns())
{
}

Report::~Report()
{
    if (!finished_)
        write_json(false, /*has_verdict=*/false);
}

void
Report::metric(const std::string& name, double value,
               const std::string& unit)
{
    metrics_.push_back({detail::slugify(name), value, unit});
}

void
Report::bench_result(const std::string& name, const BenchResult& r)
{
    metric(name + "_ns_per_iter", r.ns_per_iter, "ns");
    metric(name + "_items_per_sec", r.items_per_sec, "items/sec");
}

void
Report::flag(const std::string& name, bool value)
{
    flags_.push_back({detail::slugify(name), value});
}

std::string
output_file(const std::string& filename)
{
    const char* dir = std::getenv("MX_BENCH_OUT_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
        ? std::string(dir) + "/"
        : std::string();
    return path + filename;
}

std::string
Report::output_path() const
{
    return output_file("BENCH_" + name_ + ".json");
}

int
Report::finish(bool reproduced)
{
    finished_ = true;
    bool wrote = write_json(reproduced, /*has_verdict=*/true);
    return (reproduced && wrote) ? 0 : 1;
}

bool
Report::write_json(bool reproduced, bool has_verdict) const
{
    const std::string path = output_path();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_report: cannot write %s\n",
                     path.c_str());
        return false;
    }
    const double wall_sec =
        static_cast<double>(detail::now_ns() - start_ns_) * 1e-9;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n",
                 detail::json_escape(name_).c_str());
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"fast_mode\": %s,\n",
                 fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"wall_time_sec\": %s,\n",
                 detail::json_number(wall_sec).c_str());
    std::fprintf(f, "  \"reproduced\": %s,\n",
                 has_verdict ? (reproduced ? "true" : "false") : "null");
    std::fprintf(f, "  \"metrics\": [");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        const Metric& m = metrics_[i];
        std::fprintf(f, "%s\n    {\"name\": \"%s\", \"value\": %s",
                     i == 0 ? "" : ",",
                     detail::json_escape(m.name).c_str(),
                     detail::json_number(m.value).c_str());
        if (!m.unit.empty())
            std::fprintf(f, ", \"unit\": \"%s\"",
                         detail::json_escape(m.unit).c_str());
        std::fprintf(f, "}");
    }
    std::fprintf(f, "%s],\n", metrics_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"checks\": [");
    for (std::size_t i = 0; i < flags_.size(); ++i)
        std::fprintf(f, "%s\n    {\"name\": \"%s\", \"pass\": %s}",
                     i == 0 ? "" : ",",
                     detail::json_escape(flags_[i].name).c_str(),
                     flags_[i].value ? "true" : "false");
    std::fprintf(f, "%s]\n", flags_.empty() ? "" : "\n  ");
    std::fprintf(f, "}\n");
    bool ok = std::fclose(f) == 0;
    if (ok)
        std::printf("wrote %s\n", path.c_str());
    return ok;
}

} // namespace bench
} // namespace mx
