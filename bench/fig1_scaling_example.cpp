/**
 * @file
 * Reproduces Figures 1 and 2: the worked 5-element example
 * X = {0.7, 1.4, 2.5, 6, 7.2} quantized to 3-bit signed INTs under
 * (a) FP32 max-based scaling        -> QSNR 15.2 dB
 * (b) power-of-two scaling          -> QSNR 10.1 dB
 * (c) two partitions, each with its own max-based scale -> 16.8 dB
 * (Fig 2) one FP32 top-level scale composed with power-of-two
 *         sub-scales per partition  -> 16.8 dB
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "stats/metrics.h"

namespace {

using mx::stats::qsnr_db;

std::vector<float>
quantize_int3(const std::vector<float>& x, double scale)
{
    // m = 3 total bits: codes in [-4, 3]; the paper's example maps with
    // qmax = 2^(m-1) - 1 = 3 for max-based scaling.
    std::vector<float> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        double q = std::nearbyint(x[i] / scale);
        q = std::min(3.0, std::max(-4.0, q));
        out[i] = static_cast<float>(q * scale);
    }
    return out;
}

} // namespace

int
main()
{
    mx::bench::Report report("fig1_scaling_example");
    const std::vector<float> x = {0.7f, 1.4f, 2.5f, 6.0f, 7.2f};
    mx::bench::banner("Figure 1: scaling strategies on X = "
                      "{0.7, 1.4, 2.5, 6, 7.2}, 3-bit INT");

    // (a) FP32 max-based scale: s = max/3.
    double s_fp32 = 7.2 / 3.0;
    auto qa = quantize_int3(x, s_fp32);
    double qsnr_a = qsnr_db(x, qa);
    std::printf("(a) real-valued scale s=%.3f      QSNR = %5.1f dB "
                "(paper: 15.2)\n", s_fp32, qsnr_a);

    // (b) power-of-two scale: s = 2^ceil(log2(max/3)) = 4.
    double s_pow2 = std::ldexp(1.0, static_cast<int>(
        std::ceil(std::log2(7.2 / 3.0))));
    auto qb = quantize_int3(x, s_pow2);
    double qsnr_b = qsnr_db(x, qb);
    std::printf("(b) power-of-two scale s=%.3f    QSNR = %5.1f dB "
                "(paper: 10.1)\n", s_pow2, qsnr_b);

    // (c) two partitions {0.7, 1.4, 2.5} and {6, 7.2}, each max-scaled.
    std::vector<float> x1 = {0.7f, 1.4f, 2.5f}, x2 = {6.0f, 7.2f};
    auto q1 = quantize_int3(x1, 2.5 / 3.0);
    auto q2 = quantize_int3(x2, 7.2 / 3.0);
    std::vector<float> qc = {q1[0], q1[1], q1[2], q2[0], q2[1]};
    double qsnr_c = qsnr_db(x, qc);
    std::printf("(c) two max-based partitions      QSNR = %5.1f dB "
                "(paper: 16.8)\n", qsnr_c);

    // Figure 2: one global FP32 scale s = 7.2/3, power-of-two sub-scales
    // ss1, ss2 per partition approximating the per-partition scales.
    mx::bench::banner("Figure 2: two-level scaling (FP32 top + pow2 sub)");
    double s = 7.2 / 3.0;
    // ss2 = 1 (partition 2 is at the global scale); ss1 = 2^round(log2(
    // (2.5/3)/s)) = 2^-2 or 2^-1; the paper's example lands on ~0.417*s.
    double ss1 = std::ldexp(1.0, static_cast<int>(
        std::nearbyint(std::log2((2.5 / 3.0) / s))));
    auto f1 = quantize_int3(x1, s * ss1);
    auto f2 = quantize_int3(x2, s * 1.0);
    std::vector<float> qf = {f1[0], f1[1], f1[2], f2[0], f2[1]};
    double qsnr_f = qsnr_db(x, qf);
    std::printf("global s=%.3f, sub-scales {%.3f, 1}: QSNR = %5.1f dB "
                "(paper: 16.8)\n", s, ss1, qsnr_f);

    report.metric("qsnr_fp32_scale", qsnr_a, "dB");
    report.metric("qsnr_pow2_scale", qsnr_b, "dB");
    report.metric("qsnr_two_partitions", qsnr_c, "dB");
    report.metric("qsnr_two_level", qsnr_f, "dB");

    bool ok = qsnr_a > qsnr_b && qsnr_c > qsnr_a && qsnr_f > qsnr_a;
    report.flag("ordering_pow2_fp32_twolevel", ok);
    std::printf("\nordering pow2 < FP32 < two-level: %s\n",
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
