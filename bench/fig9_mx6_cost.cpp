/**
 * @file
 * Reproduces Figure 9's shape: training with MX6 needs more iterations
 * than MX9 to reach the same LM loss, but each MX6 iteration is cheaper
 * (throughput from the area model), so the *total normalized training
 * cost* to a target loss is lower.  Prints the loss-vs-cost series for
 * both formats.
 */

#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "data/synthetic.h"
#include "hw/cost.h"
#include "models/trainer.h"
#include "models/transformer.h"
#include "nn/optimizer.h"

using namespace mx;
using namespace mx::models;

namespace {

struct Series
{
    std::vector<double> cost;   // cumulative normalized training cost
    std::vector<double> loss;   // smoothed train loss
};

Series
train_series(const data::MarkovText& corpus, nn::QuantSpec spec,
             double cost_per_iter, int steps)
{
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.seq_len = 8;
    cfg.seed = 2024;
    cfg.spec = spec;
    GptMini model(cfg);
    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(2025);
    Series s;
    RunningAverage avg(0.05);
    for (int step = 0; step < steps; ++step) {
        auto b = corpus.windows(16, cfg.seq_len, rng);
        opt.zero_grad();
        avg.update(model.train_loss(b));
        opt.step();
        if (step % 10 == 9) {
            s.cost.push_back((step + 1) * cost_per_iter);
            s.loss.push_back(avg.value());
        }
    }
    return s;
}

/** Cost (vs MX9 = 1) to first reach the target smoothed loss. */
double
cost_to_reach(const Series& s, double target)
{
    for (std::size_t i = 0; i < s.loss.size(); ++i)
        if (s.loss[i] <= target)
            return s.cost[i];
    return -1;
}

} // namespace

int
main()
{
    bench::Report report("fig9_mx6_cost");
    data::MarkovText corpus(16, 909);
    // Throughput proxy: tensor-unit cost per iteration from the area
    // model (Fig 9 "approximated based on expected tensor unit
    // throughput"), normalized to MX9.
    hw::CostModel cm;
    double mx9_cost = cm.evaluate(core::mx9()).area_memory_product;
    double mx6_rel = cm.evaluate(core::mx6()).area_memory_product /
                     mx9_cost;

    const int steps9 = static_cast<int>(bench::scaled(500, 50));
    const int steps6 = static_cast<int>(steps9 * 3 / 2); // extra iters
    Series s9 = train_series(corpus, nn::QuantSpec::uniform(core::mx9()),
                             1.0, steps9);
    Series s6 = train_series(corpus, nn::QuantSpec::uniform(core::mx6()),
                             mx6_rel, steps6);

    bench::banner("Figure 9 (shape): LM loss vs normalized training cost");
    std::printf("MX6 per-iteration cost (MX9 = 1): %.3f\n", mx6_rel);
    std::printf("%12s %10s | %12s %10s\n", "MX9 cost", "loss",
                "MX6 cost", "loss");
    std::size_t rows = std::max(s9.loss.size(), s6.loss.size());
    for (std::size_t i = 0; i < rows; i += 5) {
        if (i < s9.loss.size() && i < s6.loss.size())
            std::printf("%12.1f %10.4f | %12.1f %10.4f\n", s9.cost[i],
                        s9.loss[i], s6.cost[i], s6.loss[i]);
    }

    double target = s9.loss.back() + 0.02; // near the MX9 end point
    double c9 = cost_to_reach(s9, target);
    double c6 = cost_to_reach(s6, target);
    std::printf("\ncost to reach loss %.4f:  MX9 = %.1f iters-equiv, "
                "MX6 = %.1f\n", target, c9, c6);

    // MX6 reaches the target (possibly with more iterations) at lower
    // or comparable total cost.
    bool reached = c6 > 0;
    double iters6 = c6 / mx6_rel, iters9 = c9;
    bool ok = reached && iters6 >= iters9 * 0.9 && c6 < c9 * 1.2;
    report.metric("mx6_per_iter_cost_vs_mx9", mx6_rel);
    report.metric("target_loss", target);
    report.metric("mx9_cost_to_target", c9, "iters-equiv");
    report.metric("mx6_cost_to_target", c6, "iters-equiv");
    report.metric("mx6_vs_mx9_total_cost_ratio", c6 / c9);
    report.flag("figure9_shape", ok);
    std::printf("MX6: %.0f iterations vs MX9's %.0f, total cost ratio "
                "%.2f (paper: more iters, lower cost)\n", iters6, iters9,
                c6 / c9);
    std::printf("\nFigure 9 shape: %s\n", ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
