#pragma once

/**
 * @file
 * Shared helpers for the experiment benches.  Each bench binary
 * regenerates one table or figure of the paper and prints the same rows
 * or series the paper reports; `MX_BENCH_FAST=1` in the environment
 * shrinks the Monte-Carlo sizes for smoke runs.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/env.h"

namespace mx {
namespace bench {

/** True when the environment requests a fast smoke run. */
inline bool
fast_mode()
{
    return core::env::flag_knob("MX_BENCH_FAST", false);
}

/** Scale a Monte-Carlo count down in fast mode. */
inline std::size_t
scaled(std::size_t full, std::size_t fast)
{
    return fast_mode() ? fast : full;
}

/** Print a section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace bench
} // namespace mx
