/**
 * @file
 * Exercises the Figure 6 hardware dot-product pipeline: bit-exactness
 * against the reference quantized dot product, the degenerate scalar-FP
 * (k1 = k2 = 1) and BFP (d2 = 0) configurations, and the per-stage area
 * breakdown used by the cost model.
 */

#include <cmath>
#include <cstdio>

#include "bench_report.h"
#include "hw/area_model.h"
#include "hw/pipeline.h"
#include "stats/rng.h"

using namespace mx;
using namespace mx::core;
using namespace mx::hw;

int
main()
{
    bench::Report report("fig6_pipeline");
    stats::Rng rng(2023);
    const int r = 64;
    const std::size_t trials = bench::scaled(2000, 100);

    bench::banner("Pipeline vs reference quantized dot (f = 25 and wide)");
    std::printf("%-14s %12s %16s\n", "Format", "f=25 max rel",
                "wide-f exact?");
    bool ok = true;
    for (const auto& f : {mx9(), mx6(), mx4(), msfp16(), fp8_e4m3(),
                          fp8_e5m2(), fp4_e2m1()}) {
        DotProductPipeline p25({f, r, 25});
        DotProductPipeline pwide({f, r, 52});
        double max_rel = 0;
        bool exact = true;
        std::vector<float> a(r), b(r);
        for (std::size_t t = 0; t < trials; ++t) {
            double sigma = std::exp(rng.normal());
            for (int i = 0; i < r; ++i) {
                a[static_cast<std::size_t>(i)] =
                    static_cast<float>(rng.normal(0, sigma));
                b[static_cast<std::size_t>(i)] =
                    static_cast<float>(rng.normal(0, sigma));
            }
            PipelineResult res = p25.run(a, b);
            double denom = std::max(1e-9, std::fabs(
                res.exact_quantized_dot));
            max_rel = std::max(max_rel,
                               std::fabs(res.value -
                                         res.exact_quantized_dot) / denom);
            PipelineResult wide = pwide.run(a, b);
            exact &= wide.value == wide.exact_quantized_dot;
        }
        ok &= exact && max_rel < 1e-3;
        report.metric("max_rel_err_f25_" + f.name, max_rel);
        report.flag("wide_f_bit_exact_" + f.name, exact);
        std::printf("%-14s %12.2e %16s\n", f.name.c_str(), max_rel,
                    exact ? "bit-exact" : "MISMATCH");
    }

    bench::banner("Per-stage area breakdown (NAND2 equivalents, r = 64)");
    AreaModel am;
    for (const auto& f : {mx9(), fp8_e4m3(), scaled_int(8), vsq(8, 8)}) {
        std::printf("--- %s (f = %d, normalized area %.3f)\n",
                    f.name.c_str(), am.accumulator_width(f),
                    am.normalized_area(f));
        std::printf("%s", am.breakdown(f).to_string().c_str());
        report.metric("normalized_area_" + f.name, am.normalized_area(f));
    }

    std::printf("\nFigure 6 pipeline semantics: %s\n",
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
