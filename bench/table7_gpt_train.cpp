/**
 * @file
 * Reproduces Table VII's shape: generative training of a ladder of GPT
 * sizes with MX9 matches the FP32 LM loss at every size, with no change
 * to hyper-parameters or recipe.
 */

#include <cmath>
#include <cstdio>

#include "bench_report.h"
#include "core/thread_pool.h"
#include "data/synthetic.h"
#include "models/transformer.h"
#include "nn/optimizer.h"

using namespace mx;
using namespace mx::models;

namespace {

struct Size
{
    const char* label;
    int d_model, heads, layers;
};

double
train_lm(const data::MarkovText& corpus, const Size& sz,
         nn::QuantSpec spec, int steps)
{
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = sz.d_model;
    cfg.heads = sz.heads;
    cfg.layers = sz.layers;
    cfg.seq_len = 8;
    cfg.seed = 123; // identical init stream for FP32 and MX9 runs
    cfg.spec = spec;
    GptMini model(cfg);
    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(321); // identical data stream as well
    for (int s = 0; s < steps; ++s) {
        auto b = corpus.windows(16, cfg.seq_len, rng);
        opt.zero_grad();
        model.train_loss(b);
        opt.step();
    }
    stats::Rng eval_rng(999);
    auto e = corpus.windows(256, cfg.seq_len, eval_rng);
    return model.eval_loss(e);
}

} // namespace

int
main()
{
    bench::Report report("table7_gpt_train");
    data::MarkovText corpus(16, 777);
    const int steps = static_cast<int>(bench::scaled(400, 40));
    const Size sizes[] = {
        {"GPT-XS", 16, 2, 1},
        {"GPT-S", 32, 2, 2},
        {"GPT-M", 48, 4, 2},
        {"GPT-L", 64, 4, 3},
    };

    bench::banner("Table VII (shape): GPT size ladder — eval LM loss "
                  "after identical FP32 vs MX9 training runs");

    // The 8 training runs (4 sizes x {FP32, MX9}) are fully
    // independent — each builds its own model, optimizer, and data
    // stream from fixed seeds — so they shard across the process pool
    // (MX_THREADS).  One run is one shard regardless of thread count,
    // and results land in a pre-sized array, so the numbers are
    // bit-identical for ANY MX_THREADS, including 1.
    constexpr std::size_t n_sizes = std::size(sizes);
    double fp_loss[n_sizes], mx_loss[n_sizes];
    core::ThreadPool::shared().parallel_for(
        2 * n_sizes, [&](std::size_t job) {
            const std::size_t i = job / 2;
            if (job % 2 == 0)
                fp_loss[i] = train_lm(corpus, sizes[i],
                                      nn::QuantSpec::fp32(), steps);
            else
                mx_loss[i] = train_lm(
                    corpus, sizes[i],
                    nn::QuantSpec::uniform(core::mx9()), steps);
        });

    std::printf("%-8s %10s %10s %10s\n", "Model", "FP32", "MX9", "delta");
    bool ok = true;
    for (std::size_t i = 0; i < n_sizes; ++i) {
        const Size& sz = sizes[i];
        const double fp = fp_loss[i], mx = mx_loss[i];
        std::printf("%-8s %10.4f %10.4f %+10.4f\n", sz.label, fp, mx,
                    mx - fp);
        report.metric(std::string(sz.label) + "_fp32_loss", fp, "nats");
        report.metric(std::string(sz.label) + "_mx9_loss", mx, "nats");
        // Run-to-run-noise territory for these miniatures: the deltas
        // land on both sides of zero across the ladder; accept up to 3%
        // of the loss (the paper's production threshold plays the same
        // role at its scale).
        ok &= std::fabs(mx - fp) < std::max(0.05, 0.03 * fp);
    }
    report.flag("mx9_matches_fp32_all_sizes", ok);
    std::printf("\nMX9 matches FP32 LM loss at every size: %s\n",
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
