/**
 * @file
 * Reproduces Table VI's shape: normalized cross-entropy (NE) difference
 * between MX9 and FP32 training for recommendation models, in both
 * uniform and mixed-precision (first/last layers high-precision)
 * settings.  Expectation: |NE delta| well inside the paper's 0.02%-style
 * production threshold scaled to our miniature (we use 1% here since the
 * miniature trains for minutes, not weeks), with mixed precision at
 * least as close as uniform.
 */

#include <cmath>
#include <cstdio>

#include "bench_report.h"
#include "data/synthetic.h"
#include "models/dlrm_mini.h"
#include "nn/optimizer.h"
#include "stats/metrics.h"

using namespace mx;
using namespace mx::models;

namespace {

double
train_and_ne(const data::ClickLogs& task, nn::QuantSpec spec,
             bool mixed_precision, int steps)
{
    DlrmConfig cfg;
    cfg.seed = 31;
    cfg.spec = spec;
    DlrmMini model(cfg);
    if (mixed_precision)
        model.set_spec(spec, /*keep_first_last_fp32=*/true);
    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(32);
    for (int s = 0; s < steps; ++s) {
        auto b = task.sample(64, rng);
        opt.zero_grad();
        model.train_loss(b);
        opt.step();
    }
    stats::Rng eval_rng(33);
    auto e = task.sample(8192, eval_rng);
    return stats::normalized_entropy(e.labels, model.predict(e));
}

} // namespace

int
main()
{
    bench::Report report("table6_dlrm_ne");
    data::ClickLogs task(8, 64, 8, 30);
    const int steps = static_cast<int>(bench::scaled(400, 40));

    bench::banner("Table VI (shape): NE difference of MX9 training vs "
                  "FP32 (lower NE is better)");
    double ne_fp32 = train_and_ne(task, nn::QuantSpec::fp32(), false,
                                  steps);
    double ne_mx9 = train_and_ne(task, nn::QuantSpec::uniform(core::mx9()),
                                 false, steps);
    double ne_mixed = train_and_ne(task,
                                   nn::QuantSpec::uniform(core::mx9()),
                                   true, steps);
    double ne_mx6 = train_and_ne(task, nn::QuantSpec::uniform(core::mx6()),
                                 false, steps);
    double ne_mx4 = train_and_ne(task, nn::QuantSpec::uniform(core::mx4()),
                                 false, steps);

    std::printf("%-28s %10s %12s\n", "Setting", "NE", "delta vs FP32");
    auto row = [&](const char* label, double ne) {
        std::printf("%-28s %10.5f %+11.3f%%\n", label, ne,
                    100.0 * (ne - ne_fp32) / ne_fp32);
    };
    row("FP32 baseline", ne_fp32);
    row("MX9 uniform training", ne_mx9);
    row("MX9 mixed precision", ne_mixed);
    row("MX6 uniform training", ne_mx6);
    row("MX4 uniform training", ne_mx4);

    report.metric("ne_fp32", ne_fp32);
    report.metric("ne_mx9_uniform", ne_mx9);
    report.metric("ne_mx9_mixed", ne_mixed);
    report.metric("ne_mx6_uniform", ne_mx6);
    report.metric("ne_mx4_uniform", ne_mx4);

    double d_uniform = std::fabs(ne_mx9 - ne_fp32) / ne_fp32;
    double d_mixed = std::fabs(ne_mixed - ne_fp32) / ne_fp32;
    report.metric("ne_delta_uniform_pct", 100.0 * d_uniform, "%");
    report.metric("ne_delta_mixed_pct", 100.0 * d_mixed, "%");
    bool ok = d_uniform < 0.01 && d_mixed < 0.01;
    report.flag("ne_delta_inside_threshold", ok);
    std::printf("\nMX9 NE delta inside the production-style threshold "
                "(uniform %.3f%%, mixed %.3f%%): %s\n",
                100.0 * d_uniform, 100.0 * d_mixed,
                ok ? "REPRODUCED" : "MISMATCH");
    return report.finish(ok);
}
