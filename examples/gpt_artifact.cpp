/**
 * @file
 * Export/serve CLI for MXFROZEN artifacts: the freeze-once,
 * mmap-serve-anywhere workflow as two separate processes.
 *
 *   $ ./examples/gpt_artifact export model.mxfrozen
 *       Pretrains llm_direct_cast's small causal LM in FP32, freezes
 *       it under MX6 (direct cast — weights quantized ONCE), writes
 *       the artifact, and saves the frozen model's greedy decode to
 *       model.mxfrozen.tokens as the cross-process reference.
 *
 *   $ ./examples/gpt_artifact serve model.mxfrozen
 *       A *different process*: mmaps the artifact read-only, loads
 *       MX_SERVE_REPLICAS replicas that all share the single mapping,
 *       serves the same greedy decode through the batched
 *       InferenceEngine, and verifies it reproduces the export-side
 *       tokens bit-for-bit (exit 1 on any divergence).
 *
 * Together the two invocations are the artifact contract end to end:
 * quantize+pack on one machine, serve the exact same bits on another,
 * with cold start skipping the entire quantize/pack step.
 *
 * Knobs: MX_SERVE_REPLICAS (serve-side worker count, default 2),
 * MX_GEMM (packed-domain routing: auto/1/0).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "artifact/reader.h"
#include "data/synthetic.h"
#include "models/transformer.h"
#include "nn/optimizer.h"
#include "serve/engine.h"

using namespace mx;
using namespace mx::models;
using tensor::Tensor;

namespace {

TransformerConfig
demo_config()
{
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 48;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.seq_len = 12;
    cfg.seed = 51;
    return cfg;
}

/** Greedy decode from a short prompt, via @p next (growing token
 *  context -> that context's [vocab] next-token logits). */
template <typename NextFn>
std::vector<int>
greedy_decode(const TransformerConfig& cfg, NextFn&& next)
{
    std::vector<int> tokens = {1, 2, 3};
    while (tokens.size() < static_cast<std::size_t>(cfg.seq_len)) {
        const std::vector<float> logits = next(tokens);
        int best = 0;
        for (int v = 1; v < cfg.vocab; ++v)
            if (logits[static_cast<std::size_t>(v)] >
                logits[static_cast<std::size_t>(best)])
                best = v;
        tokens.push_back(best);
    }
    return tokens;
}

int
run_export(const std::string& path)
{
    const TransformerConfig cfg = demo_config();
    GptMini model(cfg);
    std::printf("pretraining a %lld-parameter causal LM in FP32...\n",
                static_cast<long long>(model.param_count()));
    data::MarkovText corpus(16, 41);
    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(61);
    for (int step = 0; step < 150; ++step) {
        auto b = corpus.windows(16, cfg.seq_len, rng);
        opt.zero_grad();
        model.train_loss(b);
        opt.step();
    }

    model.freeze(nn::QuantSpec::forward_only(core::mx6()));
    model.save_frozen(path);
    std::printf("froze under MX6 and wrote %s\n", path.c_str());

    const std::vector<int> tokens =
        greedy_decode(cfg, [&](const std::vector<int>& context) {
            Tensor logits = model.decode_logits(context);
            return std::vector<float>(logits.data(),
                                      logits.data() + cfg.vocab);
        });

    std::ofstream ref(path + ".tokens", std::ios::trunc);
    for (std::size_t i = 0; i < tokens.size(); ++i)
        ref << (i ? " " : "") << tokens[i];
    ref << "\n";
    if (!ref.good()) {
        std::fprintf(stderr, "cannot write %s.tokens\n", path.c_str());
        return 1;
    }
    std::printf("reference decode:");
    for (int t : tokens)
        std::printf(" %d", t);
    std::printf("  -> %s.tokens\n", path.c_str());
    return 0;
}

int
run_serve(const std::string& path)
{
    artifact::ArtifactReader reader(path);
    std::printf("%s: %zu entries, %zu bytes, %s\n", path.c_str(),
                reader.entry_count(), reader.file_size(),
                reader.mmapped() ? "mmapped read-only"
                                 : "read into memory");

    // N replicas from the ONE reader: every loaded FrozenTensor views
    // the same mapping, so replica count does not multiply weight
    // memory (or cold-start quantize work — there is none).
    std::size_t replicas = serve::EngineConfig::default_replicas();
    if (replicas < 2)
        replicas = 2;
    std::vector<GptMini> models;
    models.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r)
        models.push_back(GptMini::load_frozen(reader));
    const TransformerConfig cfg = models.front().config();
    std::printf("loaded %zu replicas sharing the mapping\n", replicas);

    serve::EngineConfig ecfg;
    ecfg.replicas = replicas;
    serve::InferenceEngine engine(
        [&models, &cfg](std::size_t r) -> serve::InferenceEngine::BatchFn {
            GptMini* m = &models[r % models.size()];
            // Sessionless decode rows: unpack each request's context
            // and compute its next-token logits from scratch.
            return [m, &cfg](const Tensor& rows) {
                Tensor out({rows.dim(0), cfg.vocab});
                for (std::int64_t i = 0; i < rows.dim(0); ++i) {
                    const std::vector<int> context =
                        GptMini::unpack_decode_row(
                            rows.data() + i * cfg.seq_len, cfg.seq_len);
                    Tensor logits = m->decode_logits(context);
                    std::copy(logits.data(), logits.data() + cfg.vocab,
                              out.data() + i * cfg.vocab);
                }
                return out;
            };
        },
        cfg.seq_len, ecfg);

    const std::vector<int> tokens =
        greedy_decode(cfg, [&](const std::vector<int>& context) {
            return engine
                .submit(GptMini::pack_decode_row(context, cfg.seq_len))
                .get()
                .output;
        });

    std::ifstream ref(path + ".tokens");
    std::vector<int> expect;
    for (int t; ref >> t;)
        expect.push_back(t);
    std::printf("served decode:   ");
    for (int t : tokens)
        std::printf(" %d", t);
    std::printf("\nexport reference:");
    for (int t : expect)
        std::printf(" %d", t);
    std::printf("\n");
    if (tokens != expect) {
        std::printf("MISMATCH: served tokens diverge from the "
                    "export-side decode\n");
        return 1;
    }
    std::printf("MATCH: cross-process serve is bit-identical\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 3 && std::strcmp(argv[1], "export") == 0)
        return run_export(argv[2]);
    if (argc == 3 && std::strcmp(argv[1], "serve") == 0)
        return run_serve(argv[2]);
    std::fprintf(stderr,
                 "usage: %s export <artifact> | serve <artifact>\n",
                 argv[0]);
    return 2;
}
