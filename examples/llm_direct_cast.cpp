/**
 * @file
 * Direct-cast LLM serving example: pretrain a small causal LM in FP32,
 * freeze it under progressively narrower MX formats — weights quantized
 * **once** via nn/frozen.h, exactly the paper's Table IV deployment
 * story — and serve batched greedy decoding through the mx_serve
 * InferenceEngine.  On hosts with AVX2 the frozen weight matmuls run in
 * the packed domain (mx_gemm, the Figure 6 pipeline): integer mantissa
 * dot products against the MX bit stream, no dequantized FP32 weights.
 * The values-path frozen forward stays bit-identical to fake
 * quantization, so the quality table matches the per-call-quantize path
 * while decoding stops paying the weight-quantize tax every step.
 *
 * The decode-session epilogue serves *growing* contexts through a
 * replicated engine with a per-stream prefix cache: each step reuses
 * the per-layer K/V rows of the unchanged context prefix and computes
 * only the new token's column (serve/session_cache.h) — bit-identical
 * to recomputing every visible position, several times faster.
 *
 *   $ ./examples/llm_direct_cast
 *
 * Knobs: MX_SERVE_BATCH (max coalesced rows), MX_SERVE_QUEUE (bounded
 * queue capacity), MX_SERVE_REPLICAS (worker count), MX_SERVE_SESSIONS
 * (decode prefix-cache capacity; 0 disables), MX_GEMM (packed-domain
 * routing: auto/1/0).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "data/synthetic.h"
#include "gemm/packed_gemm.h"
#include "models/serve_adapters.h"
#include "models/transformer.h"
#include "nn/optimizer.h"
#include "serve/engine.h"
#include "serve/session_cache.h"

using namespace mx;
using namespace mx::models;
using tensor::Tensor;

namespace {

double
now_sec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main()
{
    data::MarkovText corpus(16, 41);
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 48;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.seq_len = 12;
    cfg.seed = 51;
    GptMini model(cfg);
    std::printf("pretraining a %lld-parameter causal LM in FP32...\n",
                static_cast<long long>(model.param_count()));

    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(61);
    for (int step = 0; step < 400; ++step) {
        auto b = corpus.windows(24, cfg.seq_len, rng);
        opt.zero_grad();
        model.train_loss(b);
        opt.step();
    }

    // --- Quality under direct cast: freeze once per format.  The
    // frozen forward is bit-identical to fake quantization, so this is
    // the same Table IV story with the weights quantized exactly once.
    auto eval = corpus.windows(256, cfg.seq_len, rng);
    std::printf("\n%-24s %10s\n", "serving format (w, a)", "LM loss");
    std::printf("%-24s %10.4f\n", "FP32", model.eval_loss(eval));
    for (const auto& fmt : {core::mx9(), core::mx6(), core::mx4()}) {
        model.freeze(nn::QuantSpec::forward_only(fmt));
        std::printf("(%s, %s)%*s %10.4f\n", fmt.name.c_str(),
                    fmt.name.c_str(),
                    static_cast<int>(14 - 2 * fmt.name.size()), "",
                    model.eval_loss(eval));
    }

    // --- Serving quickstart: greedy decoding of several streams, each
    // step one window request, batched by the engine.
    const int streams = 6;
    const int new_tokens = 32;
    std::vector<std::vector<int>> ctx(static_cast<std::size_t>(streams));
    {
        stats::Rng prompt_rng(67);
        auto prompts = corpus.windows(streams, cfg.seq_len, prompt_rng);
        for (int s = 0; s < streams; ++s)
            ctx[static_cast<std::size_t>(s)] = prompts.row(s);
    }
    auto window_of = [&](const std::vector<int>& c) {
        std::vector<float> w(static_cast<std::size_t>(cfg.seq_len));
        const std::size_t off = c.size() - static_cast<std::size_t>(
                                               cfg.seq_len);
        for (int t = 0; t < cfg.seq_len; ++t)
            w[static_cast<std::size_t>(t)] = static_cast<float>(
                c[off + static_cast<std::size_t>(t)]);
        return w;
    };
    auto argmax = [&](const float* logits) {
        int best = 0;
        for (int v = 1; v < cfg.vocab; ++v)
            if (logits[v] > logits[best])
                best = v;
        return best;
    };
    auto last_token_logits = [&](const Tensor& in) {
        return model.window_logits(in);
    };

    // Baseline: the old example's serving mode — fake quantization
    // re-quantizes every weight tensor on every decode step.
    model.unfreeze();
    model.set_spec(nn::QuantSpec::forward_only(core::mx9()));
    auto baseline_ctx = ctx;
    const double t_base = now_sec();
    for (int step = 0; step < new_tokens; ++step)
        for (auto& c : baseline_ctx) {
            Tensor x({1, cfg.seq_len});
            auto w = window_of(c);
            std::copy(w.begin(), w.end(), x.data());
            Tensor logits = last_token_logits(x);
            c.push_back(argmax(logits.data()));
        }
    const double base_tps = static_cast<double>(streams * new_tokens) /
                            (now_sec() - t_base);

    // Frozen engine: quantize the weights once, then serve batched
    // decode requests against the snapshot.
    model.freeze(nn::QuantSpec::forward_only(core::mx9()));
    double frozen_tps = 0;
    double mean_batch = 0, p50_ms = 0;
    auto frozen_ctx = ctx;
    {
        serve::EngineConfig ec;
        ec.rows_independent = true; // eval forwards are mutation-free
        serve::InferenceEngine engine(last_token_logits, cfg.seq_len, ec);
        std::vector<double> lat;
        const double t0 = now_sec();
        for (int step = 0; step < new_tokens; ++step) {
            std::vector<std::future<serve::Reply>> futures;
            futures.reserve(frozen_ctx.size());
            for (auto& c : frozen_ctx)
                futures.push_back(engine.submit(window_of(c)));
            for (int s = 0; s < streams; ++s) {
                serve::Reply r = futures[static_cast<std::size_t>(s)].get();
                frozen_ctx[static_cast<std::size_t>(s)].push_back(
                    argmax(r.output.data()));
                lat.push_back(r.latency_ms);
            }
        }
        frozen_tps = static_cast<double>(streams * new_tokens) /
                     (now_sec() - t0);
        mean_batch = engine.stats().mean_batch_rows();
        std::sort(lat.begin(), lat.end());
        p50_ms = lat[lat.size() / 2];
    }

    // The hard guarantee rides the dequantized-values path: frozen
    // forwards there are bit-identical to fake quantization, so the
    // greedy decode must reproduce the baseline token-for-token.
    const gemm::Mode ambient_mode = gemm::mode();
    gemm::set_mode(gemm::Mode::Off);
    auto legacy_ctx = ctx;
    for (int step = 0; step < new_tokens; ++step)
        for (auto& c : legacy_ctx) {
            Tensor x({1, cfg.seq_len});
            auto w = window_of(c);
            std::copy(w.begin(), w.end(), x.data());
            Tensor logits = last_token_logits(x);
            c.push_back(argmax(logits.data()));
        }
    gemm::set_mode(ambient_mode);

    std::printf("\ndecoding %d streams x %d tokens under (MX9, MX9):\n",
                streams, new_tokens);
    std::printf("  per-call quantize  : %8.1f tokens/s\n", base_tps);
    std::printf("  frozen + engine    : %8.1f tokens/s  (%.2fx, mean "
                "batch %.1f, p50 %.3f ms, %s gemm kernel)\n",
                frozen_tps, frozen_tps / base_tps, mean_batch, p50_ms,
                gemm::active_gemm_kernel().name());

    // Greedy decode is deterministic, so the values-path streams match
    // the fake-quant baseline exactly; the packed-domain streams agree
    // to FP32-accumulation tolerance on logits, which for greedy decode
    // virtually always means the same tokens.
    std::printf("  values-path decode matches fake-quant baseline: %s\n",
                legacy_ctx == baseline_ctx ? "yes" : "NO (bug!)");
    std::printf("  packed-path decode matches fake-quant baseline: %s\n",
                frozen_ctx == baseline_ctx
                    ? "yes"
                    : "diverged (within FP32-accumulation tolerance)");

    std::printf("\nsample continuation (stream 0): ");
    const auto& c0 = frozen_ctx[0];
    for (std::size_t i = c0.size() - 12; i < c0.size(); ++i)
        std::printf("%d ", c0[i]);

    // --- Decode sessions: grow fresh contexts from short prompts, one
    // request per new token, served by a replicated engine whose batch
    // function reuses each stream's cached K/V prefix.  Disabling the
    // session cache (MX_SERVE_SESSIONS=0) recomputes every visible
    // position instead — same bits, more work; we run both to show it.
    const int session_streams = 6;
    std::vector<std::vector<int>> prompts(
        static_cast<std::size_t>(session_streams));
    {
        stats::Rng prompt_rng(71);
        for (auto& p : prompts) {
            p.resize(3);
            for (int& t : p)
                t = static_cast<int>(prompt_rng.next_u64() %
                                     static_cast<std::uint64_t>(
                                         cfg.vocab));
        }
    }
    auto decode_streams = [&](bool warm) {
        serve::SessionCache sessions(warm ? 16 : 0);
        serve::EngineConfig ec;
        ec.replicas = 2; // frozen eval forwards are concurrency-safe
        serve::InferenceEngine engine(
            models::gpt_decode_batch_fn(model, sessions), cfg.seq_len,
            ec);
        auto ctx = prompts;
        int tokens = 0;
        const double t0 = now_sec();
        for (int step = 3; step < cfg.seq_len; ++step) {
            std::vector<std::future<serve::Reply>> futures;
            for (int s = 0; s < session_streams; ++s)
                futures.push_back(engine.submit(
                    GptMini::pack_decode_row(
                        ctx[static_cast<std::size_t>(s)], cfg.seq_len),
                    static_cast<std::uint64_t>(s + 1)));
            for (int s = 0; s < session_streams; ++s) {
                serve::Reply r = futures[static_cast<std::size_t>(s)]
                                     .get();
                ctx[static_cast<std::size_t>(s)].push_back(
                    argmax(r.output.data()));
                ++tokens;
            }
        }
        const double tps = tokens / (now_sec() - t0);
        return std::make_pair(tps, ctx);
    };
    auto [cold_tps, cold_streams] = decode_streams(false);
    auto [warm_tps, warm_streams] = decode_streams(true);
    std::printf("\n\ndecode sessions (%d streams, %d replicas, growing "
                "contexts):\n",
                session_streams, 2);
    std::printf("  cache off (recompute)  : %8.1f tokens/s\n", cold_tps);
    std::printf("  warm prefix reuse      : %8.1f tokens/s  (%.2fx)\n",
                warm_tps, warm_tps / cold_tps);
    std::printf("  streams bit-identical  : %s\n",
                warm_streams == cold_streams ? "yes" : "NO (bug!)");

    std::printf("\nno fine-tuning, no outlier heuristics — just a "
                "cast, frozen once.\n");
    return legacy_ctx == baseline_ctx && warm_streams == cold_streams
               ? 0
               : 1;
}
