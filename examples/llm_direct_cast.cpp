/**
 * @file
 * Direct-cast LLM inference example: pretrain a small causal LM in
 * FP32, then serve it under progressively narrower MX formats with
 * *both weights and activations* quantized by a straight cast — the
 * paper's headline generative-inference result (Table IV).
 *
 *   $ ./examples/llm_direct_cast
 */

#include <cstdio>

#include "data/synthetic.h"
#include "models/transformer.h"
#include "nn/optimizer.h"

using namespace mx;
using namespace mx::models;

int
main()
{
    data::MarkovText corpus(16, 41);
    TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.d_model = 48;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.seq_len = 12;
    cfg.seed = 51;
    GptMini model(cfg);
    std::printf("pretraining a %lld-parameter causal LM in FP32...\n",
                static_cast<long long>(model.param_count()));

    nn::Adam opt(model.params(), 4e-3);
    stats::Rng rng(61);
    for (int step = 0; step < 400; ++step) {
        auto b = corpus.windows(24, cfg.seq_len, rng);
        opt.zero_grad();
        model.train_loss(b);
        opt.step();
    }

    auto eval = corpus.windows(256, cfg.seq_len, rng);
    std::printf("\n%-24s %10s\n", "serving format (w, a)", "LM loss");
    std::printf("%-24s %10.4f\n", "FP32", model.eval_loss(eval));
    for (const auto& fmt : {core::mx9(), core::mx6(), core::mx4()}) {
        model.set_spec(nn::QuantSpec::forward_only(fmt));
        std::printf("(%s, %s)%*s %10.4f\n", fmt.name.c_str(),
                    fmt.name.c_str(),
                    static_cast<int>(14 - 2 * fmt.name.size()), "",
                    model.eval_loss(eval));
    }
    std::printf("\nno fine-tuning, no outlier heuristics — just a cast.\n");
    return 0;
}
