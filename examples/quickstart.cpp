/**
 * @file
 * Quickstart: quantize a tensor to MX9/MX6/MX4, inspect fidelity and
 * storage, and run the hardware dot-product pipeline.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "core/qsnr_harness.h"
#include "core/theory.h"
#include "formats/block_codec.h"
#include "hw/cost.h"
#include "hw/pipeline.h"
#include "stats/metrics.h"

using namespace mx;

int
main()
{
    // 1. Make some data (the paper's variable-variance Gaussian).
    stats::Rng rng(7);
    std::vector<float> x;
    stats::make_vector(stats::Distribution::GaussianVariableVariance, 1.0,
                       256, rng, x);

    // 2. Fake-quantize to each MX format and measure QSNR (Eq. 3).
    std::printf("Quantizing 256 values:\n");
    for (const auto& fmt : {core::mx9(), core::mx6(), core::mx4()}) {
        auto q = core::fake_quantize(fmt, x);
        std::printf("  %-4s -> QSNR %6.2f dB (Theorem-1 bound %6.2f), "
                    "%.1f bits/element\n", fmt.name.c_str(),
                    stats::qsnr_db(x, q),
                    core::qsnr_lower_bound_db(fmt, x.size()),
                    fmt.bits_per_element());
    }

    // 3. Pack to the exact bit stream a native-MX memory would hold.
    formats::PackedTensor packed = formats::pack(core::mx9(), x);
    std::printf("\nPacked MX9 tensor: %zu elements in %zu bytes "
                "(%.2f bits/element)\n", packed.num_elements,
                packed.bytes.size(), packed.bits_per_element());
    auto restored = formats::unpack(packed);
    std::printf("unpack == fake_quantize: %s\n",
                restored == core::fake_quantize(core::mx9(), x) ? "yes"
                                                                : "no");

    // 4. Run the Figure 6 hardware pipeline on a 64-element dot product.
    std::vector<float> a(x.begin(), x.begin() + 64);
    std::vector<float> b(x.begin() + 64, x.begin() + 128);
    hw::DotProductPipeline pipe({core::mx9(), 64, 25});
    hw::PipelineResult res = pipe.run(a, b);
    std::printf("\nMX9 dot product (r=64, f=25): hw=%.6f exact=%.6f "
                "(truncated bits: %d)\n", res.value,
                res.exact_quantized_dot, res.truncated_bits);

    // 5. Where does MX9 sit on the Figure 7 cost axis?
    hw::CostModel cm;
    auto c = cm.evaluate(core::mx9());
    std::printf("\nMX9 normalized cost: area %.3f x memory %.3f = %.3f "
                "(FP8 = 1.0)\n", c.normalized_area, c.normalized_memory,
                c.area_memory_product);
    return 0;
}
