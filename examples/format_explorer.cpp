/**
 * @file
 * Format explorer: evaluate any BDR configuration from the command line.
 *
 *   $ ./examples/format_explorer m d1 k1 d2 k2 [vectors]
 *   $ ./examples/format_explorer 7 8 16 1 2      # MX9
 *   $ ./examples/format_explorer 3 8 16 0 1      # MSFP12
 *
 * Prints QSNR under several distributions, the Theorem 1 bound, the
 * area/memory cost, and the per-stage area breakdown.
 */

#include <cstdio>
#include <cstdlib>

#include "core/check.h"
#include "core/qsnr_harness.h"
#include "core/theory.h"
#include "hw/cost.h"

using namespace mx;

int
main(int argc, char** argv)
{
    if (argc < 6) {
        std::fprintf(stderr,
                     "usage: %s m d1 k1 d2 k2 [num_vectors]\n"
                     "  e.g. %s 7 8 16 1 2   (MX9)\n", argv[0], argv[0]);
        return 2;
    }
    int m = std::atoi(argv[1]);
    int d1 = std::atoi(argv[2]);
    int k1 = std::atoi(argv[3]);
    int d2 = std::atoi(argv[4]);
    int k2 = std::atoi(argv[5]);
    std::size_t vectors = argc > 6
        ? static_cast<std::size_t>(std::atoll(argv[6]))
        : 2000;

    core::BdrFormat fmt;
    try {
        fmt = core::mx_custom(m, d1, k1, d2, k2);
    } catch (const mx::Error& e) {
        std::fprintf(stderr, "invalid configuration: %s\n", e.what());
        return 2;
    }
    std::printf("%s — %.3f bits/element\n", fmt.summary().c_str(),
                fmt.bits_per_element());

    core::QsnrRunConfig cfg;
    cfg.num_vectors = vectors;
    cfg.vector_length = 1024;
    std::printf("\nQSNR (%zu vectors x %zu):\n", cfg.num_vectors,
                cfg.vector_length);
    for (auto d : stats::all_distributions()) {
        cfg.distribution = d;
        std::printf("  %-20s %7.2f dB\n", stats::to_string(d).c_str(),
                    core::measure_qsnr_db(fmt, cfg));
    }
    std::printf("Theorem 1 lower bound: %.2f dB\n",
                core::qsnr_lower_bound_db(fmt, cfg.vector_length));

    hw::CostModel cm;
    auto c = cm.evaluate(fmt);
    std::printf("\nHardware cost (FP8 dual = 1.0): area %.3f, memory "
                "%.3f, product %.3f\n", c.normalized_area,
                c.normalized_memory, c.area_memory_product);
    std::printf("\n%s", cm.area_model().breakdown(fmt).to_string().c_str());
    return 0;
}
