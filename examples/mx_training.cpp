/**
 * @file
 * End-to-end MX training example: train the same MLP in FP32 and in
 * MX9 (Figure 8 compute flow: every matmul quantized in both passes)
 * and watch the loss curves track each other.
 *
 *   $ ./examples/mx_training
 */

#include <cstdio>

#include "data/synthetic.h"
#include "models/mlp.h"
#include "models/trainer.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "stats/metrics.h"

using namespace mx;
using namespace mx::models;

namespace {

double
train(MlpClassifier& model, const data::GaussianClusters& task,
      const char* label)
{
    nn::Adam opt(model.params(), 3e-3);
    stats::Rng rng(5150); // identical data stream for both runs
    RunningAverage avg(0.05);
    std::printf("%s:\n", label);
    for (int step = 0; step < 200; ++step) {
        auto b = task.sample(64, rng);
        opt.zero_grad();
        tensor::Tensor logits = model.logits(b.x, true);
        auto res = nn::softmax_cross_entropy(logits, b.labels);
        model.backward(res.grad);
        opt.step();
        avg.update(res.loss);
        if (step % 40 == 39)
            std::printf("  step %3d  loss %.4f\n", step + 1, avg.value());
    }
    stats::Rng eval_rng(6160);
    auto e = task.sample(2048, eval_rng);
    tensor::Tensor logits = model.logits(e.x, false);
    double acc = stats::top1_accuracy(e.labels, logits.vec(), 6);
    std::printf("  eval top-1 accuracy: %.4f\n", acc);
    return acc;
}

} // namespace

int
main()
{
    data::GaussianClusters task(6, 12, 314);

    MlpClassifier fp32(12, {48, 48}, 6, nn::QuantSpec::fp32(), 9);
    double a_fp = train(fp32, task, "FP32 baseline");

    // Uniform MX9: forward AND backward matmuls quantized, no recipe
    // change, same seeds and hyper-parameters.
    MlpClassifier mx9(12, {48, 48}, 6,
                      nn::QuantSpec::uniform(core::mx9()), 9);
    double a_mx = train(mx9, task, "MX9 training (drop-in)");

    std::printf("\naccuracy delta (MX9 - FP32): %+.4f — the paper's "
                "drop-in-replacement claim in miniature\n", a_mx - a_fp);
    return 0;
}
