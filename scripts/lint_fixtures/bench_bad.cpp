// Fixture: a metric key that relies on the slugifier.
struct R { void metric(const char*, double); void flag(const char*, bool); };
void report(R& r) {
    r.metric("Items/Sec", 1.0);
    r.flag("ok-flag", true);
}
