// Fixture: spawning a raw std::thread outside the two doors.
#include <thread>
void load() {
    std::thread t([] {});
    t.join();
}
