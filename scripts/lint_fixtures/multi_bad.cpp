// Fixture: one file, two violations — both must be reported.
#include <cstdlib>
#include <thread>
void worker() {
    const char* n = getenv("MX_N");
    std::thread t([n] { (void)n; });
    t.join();
}
