// Fixture: avx2_* TUs are compiled with -mavx2 -mfma (and carry the
// runtime-dispatch contract), so intrinsics are expected here.
#include <immintrin.h>
float sum8(const float* p) {
    __m256 v = _mm256_loadu_ps(p);
    (void)v;
    return p[0];
}
