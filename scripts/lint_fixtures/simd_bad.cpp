// Fixture: intrinsics in a TU without per-file -m flags.
#include <immintrin.h>
float sum8(const float* p) {
    __m256 v = _mm256_loadu_ps(p);
    (void)v;
    return p[0];
}
