// Fixture: steady_clock intervals and identifiers that merely
// *contain* "rand" (gemm_operand) are fine.
#include <chrono>
int gemm_operand();
double elapsed() {
    auto t0 = std::chrono::steady_clock::now();
    (void)gemm_operand();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}
