// Fixture: pre-slugified keys, including prefix concatenation.
#include <string>
struct R { void metric(const std::string&, double); void flag(const char*, bool); };
void report(R& r, const std::string& shape) {
    r.metric("items_per_sec", 1.0);
    r.metric("gemm_" + shape, 2.0);
    r.flag("claims_hold", true);
}
