// Fixture: libc randomness and wall clocks inside src/.
#include <chrono>
#include <cstdlib>
int sample() {
    auto now = std::chrono::system_clock::now();
    (void)now;
    return rand();
}
