// Fixture: merely *mentioning* std::getenv("X") in a comment or a
// string literal must not trip env-door.
/* Knobs are read with std::getenv, not core/env.h: see obs.h. */
const char* doc = "call std::getenv(name) yourself";
int f() { return 0; }
