// Fixture: src/obs/ is the documented getenv exception (it sits below
// core in the layer DAG and cannot link core/env).
#include <cstdlib>
const char* trace_path() { return std::getenv("MX_TRACE"); }
