// Fixture: core/thread_pool.cpp IS the threading door.
#include <thread>
#include <vector>
std::vector<std::thread> workers;
