// Fixture: raw getenv outside core/env.* must trip env-door.
#include <cstdlib>
int threads() {
    const char* raw = std::getenv("MX_GEMM_THREADS");
    return raw ? 1 : 0;
}
