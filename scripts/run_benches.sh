#!/usr/bin/env bash
# Run every bench binary and collect the BENCH_<name>.json reports.
#
#   scripts/run_benches.sh [--only=NAMES] [--trace] [BUILD_DIR] [OUT_DIR]
#
#   --only=NAMES  comma-separated name filter so a single bench (e.g.
#                 gemm_packed) can be rerun without the full suite;
#                 each entry must exactly match a known bench name
#   --trace    opt-in: run each bench with MX_TRACE set (trace JSON
#              lands next to its report as TRACE_<name>.json) and
#              validate every trace with scripts/trace_summary.py; a
#              trace that fails validation counts as a bench failure
#   BUILD_DIR  cmake build tree (default: build; configured+built on
#              demand when missing)
#   OUT_DIR    where the JSON reports land (default: BUILD_DIR/bench_results)
#
# Environment:
#   MX_BENCH_FAST=1   shrink Monte-Carlo sizes for a smoke run
#   MX_BENCH_ONLY=perf_quantize,fig7_pareto   same filter as --only
#
# Exit status is the number of benches that failed their claim checks
# or were requested but had no binary (0 = everything ran and
# reproduced).

set -u

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)

ONLY=""
TRACE=0
POSITIONAL=()
for arg in "$@"; do
    case "$arg" in
        --only=*) ONLY="${arg#--only=}" ;;
        --only)   echo "usage: --only=name1,name2" >&2; exit 2 ;;
        --trace)  TRACE=1 ;;
        *)        POSITIONAL+=("$arg") ;;
    esac
done
BUILD_DIR=${POSITIONAL[0]:-"$REPO_ROOT/build"}
OUT_DIR=${POSITIONAL[1]:-"$BUILD_DIR/bench_results"}

BENCHES=(
    perf_quantize
    gemm_packed
    serve_latency
    table1_table2_formats
    fig1_scaling_example
    theorem1_bound
    ablation_knee
    fig6_pipeline
    fig7_pareto
    fig9_mx6_cost
    table3_models
    table4_gpt_cast
    table5_bert_qa
    table6_dlrm_ne
    table7_gpt_train
)

# --only beats MX_BENCH_ONLY; both take a comma-separated name list.
FILTER=${ONLY:-${MX_BENCH_ONLY:-}}
if [ -n "$FILTER" ]; then
    IFS=',' read -r -a REQUESTED <<< "$FILTER"
    SELECTED=()
    for want in "${REQUESTED[@]}"; do
        found=0
        for b in "${BENCHES[@]}"; do
            if [ "$b" = "$want" ]; then
                SELECTED+=("$b")
                found=1
                break
            fi
        done
        if [ "$found" = 0 ]; then
            echo "== unknown bench '$want' (known: ${BENCHES[*]})" >&2
            exit 2
        fi
    done
    BENCHES=("${SELECTED[@]}")
fi

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    echo "== configuring $BUILD_DIR"
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" || exit 1
fi
echo "== building bench_all"
cmake --build "$BUILD_DIR" --target bench_all -j "$(nproc)" || exit 1

mkdir -p "$OUT_DIR"
# Drop the selected benches' stale artifacts so one that dies before
# writing its output can't leave a previous run's numbers masquerading
# as current results; a filtered rerun keeps the other benches'
# reports.
for b in "${BENCHES[@]}"; do
    rm -f "$OUT_DIR/BENCH_$b.json" "$OUT_DIR/TRACE_$b.json"
    if [ "$b" = "fig7_pareto" ]; then
        rm -f "$OUT_DIR"/fig7_sweep.csv
    fi
done
export MX_BENCH_OUT_DIR="$OUT_DIR"

failures=0
for b in "${BENCHES[@]}"; do
    exe="$BUILD_DIR/bench/$b"
    if [ ! -x "$exe" ]; then
        echo "== MISSING $b (no binary at $exe) — counted as a failure"
        failures=$((failures + 1))
        continue
    fi
    echo
    echo "==================== $b ===================="
    if [ "$TRACE" = 1 ]; then
        if ! MX_TRACE="$OUT_DIR/TRACE_$b.json" "$exe"; then
            echo "== $b: MISMATCH (non-zero exit)"
            failures=$((failures + 1))
        fi
        if ! python3 "$REPO_ROOT/scripts/trace_summary.py" \
                "$OUT_DIR/TRACE_$b.json"; then
            echo "== $b: trace failed validation"
            failures=$((failures + 1))
        fi
    elif ! "$exe"; then
        echo "== $b: MISMATCH (non-zero exit)"
        failures=$((failures + 1))
    fi
done

echo
echo "== reports in $OUT_DIR:"
ls -l "$OUT_DIR"/BENCH_*.json 2>/dev/null
echo
echo "== $failures bench(es) failed their claim checks"
exit "$failures"
