#!/usr/bin/env bash
# Run every bench binary and collect the BENCH_<name>.json reports.
#
#   scripts/run_benches.sh [BUILD_DIR] [OUT_DIR]
#
#   BUILD_DIR  cmake build tree (default: build; configured+built on
#              demand when missing)
#   OUT_DIR    where the JSON reports land (default: BUILD_DIR/bench_results)
#
# Environment:
#   MX_BENCH_FAST=1   shrink Monte-Carlo sizes for a smoke run
#   MX_BENCH_ONLY=perf_quantize,fig7_pareto   run a subset
#
# Exit status is the number of benches that failed their claim checks
# or were requested but had no binary (0 = everything ran and
# reproduced).

set -u

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
OUT_DIR=${2:-"$BUILD_DIR/bench_results"}

BENCHES=(
    perf_quantize
    serve_latency
    table1_table2_formats
    fig1_scaling_example
    theorem1_bound
    ablation_knee
    fig6_pipeline
    fig7_pareto
    fig9_mx6_cost
    table3_models
    table4_gpt_cast
    table5_bert_qa
    table6_dlrm_ne
    table7_gpt_train
)

if [ -n "${MX_BENCH_ONLY:-}" ]; then
    IFS=',' read -r -a BENCHES <<< "$MX_BENCH_ONLY"
fi

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    echo "== configuring $BUILD_DIR"
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" || exit 1
fi
echo "== building bench_all"
cmake --build "$BUILD_DIR" --target bench_all -j "$(nproc)" || exit 1

mkdir -p "$OUT_DIR"
# Drop stale reports so a bench that dies before writing its JSON can't
# leave a previous run's numbers masquerading as current results.
rm -f "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/fig7_sweep.csv
export MX_BENCH_OUT_DIR="$OUT_DIR"

failures=0
for b in "${BENCHES[@]}"; do
    exe="$BUILD_DIR/bench/$b"
    if [ ! -x "$exe" ]; then
        echo "== MISSING $b (no binary at $exe) — counted as a failure"
        failures=$((failures + 1))
        continue
    fi
    echo
    echo "==================== $b ===================="
    if ! "$exe"; then
        echo "== $b: MISMATCH (non-zero exit)"
        failures=$((failures + 1))
    fi
done

echo
echo "== reports in $OUT_DIR:"
ls -l "$OUT_DIR"/BENCH_*.json 2>/dev/null
echo
echo "== $failures bench(es) failed their claim checks"
exit "$failures"
