#!/usr/bin/env python3
"""Repo-invariant linter for the mx tree.

Checks the layering/determinism contracts that neither the compiler
nor clang-tidy can see — the rules ARCHITECTURE.md promises:

  env-door      inside src/, std::getenv only in core/env.* (the knob
                parser) and src/obs/ (documented bootstrap exception:
                obs sits below core in the layer DAG and cannot link
                it).  The harness tier (bench/, tests/) may read
                string-valued vars like MX_BENCH_OUT_DIR directly —
                only src/ ships.
  thread-door   std::thread / <thread> only in core/thread_pool.*
                (the compute pool) and serve/engine.* (the replica
                workers) — everything else parallelizes through them.
  simd-tu       <immintrin.h> / _mm* intrinsics only in avx2_*/avx512_*
                TUs, the ones CMake compiles with the matching -m
                flags; intrinsics elsewhere would either fail to build
                or silently require host AVX in "scalar" builds.
  determinism   no wall-clock or libc randomness inside src/: no
                rand()/srand()/random_device, no system_clock /
                time(nullptr) / gettimeofday.  steady_clock (interval
                timing) is fine.  Seeds are explicit; bit-exactness
                across runs is a tested artifact property.
  bench-keys    string keys handed to Report::metric()/flag() in
                bench/ must already be [a-z0-9_] slugs, so report
                JSON keys never depend on the slugifier rewriting
                them (compare_benches.py matches keys literally).

Usage:
  scripts/mx_lint.py              lint the repo (exit 1 on violations)
  scripts/mx_lint.py --self-test  run the fixture suite in
                                  scripts/lint_fixtures/ (exit 1 on
                                  any mismatch)
  scripts/mx_lint.py PATH...      lint specific files (repo-relative)

Fixture manifest (scripts/lint_fixtures/MANIFEST): one line per case,
"<fixture-file> <virtual-repo-path> <rule-id,...|->", where "-" means
the fixture must lint clean at that path.
"""

import os
import re
import sys

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
FIXTURE_DIR = os.path.join(REPO_ROOT, "scripts", "lint_fixtures")

SOURCE_EXTS = (".cpp", ".h", ".hpp", ".cc")
LINT_DIRS = ("src", "bench", "tests", "examples")

# ---------------------------------------------------------------------------
# Comment stripping: rules 1-4 must not fire on documentation that
# *mentions* getenv or std::thread.  Keeps line structure so reported
# line numbers stay real; string literals are preserved (bench-keys
# scans them) but blanked for the code rules below.


def strip_comments(text):
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                i += 2
                continue
            if c == '"':
                mode = "str"
            elif c == "'":
                mode = "chr"
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == quote:
                mode = "code"
            out.append(c)
        i += 1
    return "".join(out)


def blank_strings(text):
    """Replace string-literal contents with spaces (layout preserved)."""
    out = []
    i, n = 0, len(text)
    in_str = False
    while i < n:
        c = text[i]
        if in_str:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == '"':
                in_str = False
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        else:
            if c == '"':
                in_str = True
            out.append(c)
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rules.  Each returns a list of (line_number, message).


def _matches(pattern, code):
    return [(code.count("\n", 0, m.start()) + 1, m.group(0).strip())
            for m in re.finditer(pattern, code)]


ENV_DOOR_ALLOW = ("src/core/env.cpp", "src/core/env.h")
ENV_DOOR_PREFIX = "src/obs/"

def rule_env_door(path, code, _raw):
    if not path.startswith("src/"):
        return []
    if path in ENV_DOOR_ALLOW or path.startswith(ENV_DOOR_PREFIX):
        return []
    return [(ln, f"'{tok}': read knobs through core/env.h "
                 "(std::getenv is confined to core/env.* and the "
                 "documented src/obs/ bootstrap exception)")
            for ln, tok in _matches(r"\b(?:std::)?getenv\s*\(", code)]


THREAD_DOOR_ALLOW = (
    "src/core/thread_pool.h", "src/core/thread_pool.cpp",
    "src/serve/engine.h", "src/serve/engine.cpp",
)

def rule_thread_door(path, code, _raw):
    if path in THREAD_DOOR_ALLOW or not path.startswith("src/"):
        return []
    hits = _matches(r"\bstd::thread\b", code)
    hits += _matches(r"#\s*include\s*<thread>", code)
    return [(ln, f"'{tok}': spawn through core::ThreadPool "
                 "(raw std::thread is confined to core/thread_pool.* "
                 "and the serve/engine.* replica workers)")
            for ln, tok in sorted(hits)]


SIMD_TU_RE = re.compile(r"^(avx2|avx512)_")

def rule_simd_tu(path, code, _raw):
    if not path.startswith("src/"):
        return []
    if SIMD_TU_RE.match(os.path.basename(path)):
        return []
    hits = _matches(r"#\s*include\s*<immintrin\.h>", code)
    hits += _matches(r"\b_mm\d*_\w+\s*\(", code)
    return [(ln, f"'{tok}': SIMD intrinsics belong in avx2_*/avx512_* "
                 "TUs (the ones CMake builds with the matching -m "
                 "flags); route through core/kernels/dispatch.h")
            for ln, tok in sorted(hits)]


NONDET_PATTERNS = (
    (r"\bs?rand\s*\(", "libc rand"),
    (r"\bstd::random_device\b", "nondeterministic seed source"),
    (r"\b(?:std::chrono::)?system_clock\b", "wall clock"),
    (r"\bhigh_resolution_clock\b", "alias that may be the wall clock"),
    (r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)", "wall clock"),
    (r"\bgettimeofday\s*\(", "wall clock"),
    (r"\blocaltime(?:_r)?\s*\(", "wall clock"),
)

def rule_determinism(path, code, _raw):
    if not path.startswith("src/"):
        return []
    out = []
    for pattern, why in NONDET_PATTERNS:
        out += [(ln, f"'{tok}': {why} inside src/ breaks run-to-run "
                     "bit-exactness; take seeds/timestamps as "
                     "arguments (steady_clock is fine for intervals)")
                for ln, tok in _matches(pattern, code)]
    return sorted(out)


BENCH_KEY_RE = re.compile(r"\b(?:metric|flag)\s*\(\s*\"([^\"]*)\"")
BENCH_KEY_OK = re.compile(r"^[a-z0-9_]*$")

def rule_bench_keys(path, _code, raw):
    if not path.startswith("bench/"):
        return []
    out = []
    for m in BENCH_KEY_RE.finditer(raw):
        key = m.group(1)
        if not BENCH_KEY_OK.match(key):
            ln = raw.count("\n", 0, m.start()) + 1
            out.append((ln, f'metric/flag key "{key}" is not a '
                            "[a-z0-9_] slug; report JSON keys must "
                            "not depend on the slugifier rewriting "
                            "them"))
    return out


RULES = (
    ("env-door", rule_env_door),
    ("thread-door", rule_thread_door),
    ("simd-tu", rule_simd_tu),
    ("determinism", rule_determinism),
    ("bench-keys", rule_bench_keys),
)


def lint_text(path, raw):
    """Lint one file's content at virtual repo path; returns
    [(rule_id, line, message)]."""
    code = blank_strings(strip_comments(raw))
    findings = []
    for rule_id, fn in RULES:
        for ln, msg in fn(path, code, strip_comments(raw)):
            findings.append((rule_id, ln, msg))
    return findings


# ---------------------------------------------------------------------------


def repo_files():
    for top in LINT_DIRS:
        for dirpath, _dirs, names in os.walk(os.path.join(REPO_ROOT, top)):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, REPO_ROOT)


def lint_repo(paths):
    failures = 0
    checked = 0
    for rel in paths:
        rel = rel.replace(os.sep, "/")
        full = os.path.join(REPO_ROOT, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
        except OSError as exc:
            print(f"mx_lint: cannot read {rel}: {exc}", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for rule_id, ln, msg in lint_text(rel, raw):
            print(f"{rel}:{ln}: [{rule_id}] {msg}")
            failures += 1
    if failures:
        print(f"mx_lint: {failures} violation(s)")
        return 1
    print(f"mx_lint: clean ({checked} files, {len(RULES)} rules)")
    return 0


def self_test():
    manifest = os.path.join(FIXTURE_DIR, "MANIFEST")
    if not os.path.exists(manifest):
        print(f"mx_lint: missing {manifest}", file=sys.stderr)
        return 1
    cases = []
    with open(manifest, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fixture, vpath, expected = line.split()
            want = set() if expected == "-" else set(expected.split(","))
            cases.append((fixture, vpath, want))
    bad = 0
    for fixture, vpath, want in cases:
        with open(os.path.join(FIXTURE_DIR, fixture),
                  encoding="utf-8") as fh:
            raw = fh.read()
        got = {rule_id for rule_id, _ln, _msg in lint_text(vpath, raw)}
        status = "ok"
        if got != want:
            status = (f"FAIL (want {sorted(want) or ['clean']}, "
                      f"got {sorted(got) or ['clean']})")
            bad += 1
        print(f"mx_lint self-test: {fixture} as {vpath}: {status}")
    untested = {r for r, _ in RULES} - {r for _, _, w in cases for r in w}
    if untested:
        print(f"mx_lint self-test: FAIL — rules with no failing "
              f"fixture: {sorted(untested)}")
        bad += 1
    if bad:
        print(f"mx_lint self-test: {bad} case(s) failed")
        return 1
    print(f"mx_lint self-test: {len(cases)} cases passed")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    paths = [a for a in argv if not a.startswith("-")]
    return lint_repo(paths if paths else repo_files())


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
