#!/usr/bin/env bash
# Run clang-tidy over every repo TU and gate on the tracked baseline.
#
#   scripts/run_static_analysis.sh [--require] [BUILD_DIR]
#
#   --require  fail (exit 2) when clang-tidy is unavailable instead of
#              skipping — the CI leg passes this so a broken install
#              cannot silently disable the gate; local runs without
#              clang simply skip
#   BUILD_DIR  cmake build tree holding compile_commands.json
#              (default: build; configured on demand when missing)
#
# Findings are normalized to "relative/path.cpp:check-name" lines and
# compared against scripts/static_analysis_baseline.txt:
#   * a finding not covered by the baseline FAILS the gate (new debt)
#   * a baseline entry with no remaining finding WARNS (stale entry —
#     delete it so the debt cannot silently return)
# Baseline lines may use "*" for the path to tolerate a check anywhere.
#
# Exit status: 0 clean or skipped, 1 new findings, 2 tool missing
# under --require (or infrastructure failure).

set -u

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BASELINE="$REPO_ROOT/scripts/static_analysis_baseline.txt"

REQUIRE=0
POSITIONAL=()
for arg in "$@"; do
    case "$arg" in
        --require) REQUIRE=1 ;;
        -h|--help) sed -n '2,22p' "$0"; exit 0 ;;
        *)         POSITIONAL+=("$arg") ;;
    esac
done
BUILD_DIR=${POSITIONAL[0]:-"$REPO_ROOT/build"}

# --- locate clang-tidy (plain name first, then versioned installs) ---
TIDY=""
for cand in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
    if command -v "$cand" >/dev/null 2>&1; then
        TIDY=$cand
        break
    fi
done
if [ -z "$TIDY" ]; then
    if [ "$REQUIRE" -eq 1 ]; then
        echo "run_static_analysis: clang-tidy not found (--require)" >&2
        exit 2
    fi
    echo "run_static_analysis: clang-tidy not found; skipping" \
         "(install clang-tidy or rely on the CI static-analysis job)"
    exit 0
fi

# --- make sure a compilation database exists -------------------------
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_static_analysis: configuring $BUILD_DIR for" \
         "compile_commands.json"
    cmake -S "$REPO_ROOT" -B "$BUILD_DIR" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_static_analysis: no compile_commands.json in $BUILD_DIR" >&2
    exit 2
fi

# --- enumerate repo TUs from the database ----------------------------
# Keep first-party code only: fetched third-party sources (gtest under
# the build tree) are not ours to lint.
TU_LIST=$(python3 - "$BUILD_DIR/compile_commands.json" "$REPO_ROOT" <<'EOF'
import json, os, sys
db_path, root = sys.argv[1], os.path.realpath(sys.argv[2])
build = os.path.realpath(os.path.dirname(db_path))
for entry in json.load(open(db_path)):
    f = os.path.realpath(entry["file"])
    if f.startswith(root + os.sep) and not f.startswith(build + os.sep):
        print(f)
EOF
) || exit 2
if [ -z "$TU_LIST" ]; then
    echo "run_static_analysis: no first-party TUs in the database" >&2
    exit 2
fi
TU_COUNT=$(printf '%s\n' "$TU_LIST" | wc -l)

JOBS=$( (nproc || sysctl -n hw.ncpu || echo 4) 2>/dev/null )
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "run_static_analysis: $TIDY over $TU_COUNT TUs ($JOBS jobs)"
# clang-tidy exits nonzero on findings; the baseline decides pass/fail,
# so swallow per-TU status and look only at the diagnostics.
printf '%s\n' "$TU_LIST" | xargs -P "$JOBS" -n 4 \
    "$TIDY" -p "$BUILD_DIR" --quiet >"$RAW" 2>/dev/null || true

# --- normalize findings and diff against the baseline ----------------
python3 - "$RAW" "$BASELINE" "$REPO_ROOT" <<'EOF'
import os, re, sys
raw_path, baseline_path, root = sys.argv[1], sys.argv[2], sys.argv[3]
root = os.path.realpath(root)

finding_re = re.compile(
    r"^(?P<file>/[^:]+):\d+:\d+: (?:warning|error): .* \[(?P<checks>[^\]]+)\]")
findings = set()
for line in open(raw_path, errors="replace"):
    m = finding_re.match(line)
    if not m:
        continue
    f = os.path.realpath(m.group("file"))
    if not f.startswith(root + os.sep):
        continue
    rel = os.path.relpath(f, root)
    for check in m.group("checks").split(","):
        findings.add((rel, check.strip()))

baseline = set()
if os.path.exists(baseline_path):
    for line in open(baseline_path):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        path, _, check = line.rpartition(":")
        baseline.add((path, check))

def tolerated(rel, check):
    return (rel, check) in baseline or ("*", check) in baseline

new = sorted(f for f in findings if not tolerated(*f))
stale = sorted(b for b in baseline
               if b[0] != "*" and b not in findings)
wild_stale = sorted(b for b in baseline if b[0] == "*"
                    and not any(c == b[1] for _, c in findings))

for path, check in stale + wild_stale:
    print(f"run_static_analysis: stale baseline entry {path}:{check} "
          f"(finding is gone — delete the line)")
if new:
    print(f"run_static_analysis: {len(new)} finding(s) not in baseline:")
    for path, check in new:
        print(f"  {path}:{check}")
    print("Fix them, or (for accepted debt) append the lines above to "
          "scripts/static_analysis_baseline.txt")
    sys.exit(1)
print(f"run_static_analysis: clean "
      f"({len(findings)} finding(s), all baselined)")
EOF
