#!/usr/bin/env python3
"""Diff a run's BENCH_*.json reports against a committed baseline.

The bench regression gate (ROADMAP): every bench binary emits
BENCH_<name>.json (see bench/bench_report.h); a snapshot lives in
bench/baselines/.  This script compares a fresh run against that
snapshot and fails when

  - a *_items_per_sec throughput metric drops below
    ``baseline * --throughput-tol`` (throughput is noisy on shared CI
    runners, so the default tolerance is a generous ratio, not a tight
    percentage);
  - a QSNR/dB metric drops by more than ``--qsnr-tol`` dB (fidelity is
    deterministic, so the default tolerance is tight);
  - a claim check ("checks": [...]) that passed in the baseline fails;
  - a bench whose baseline says "reproduced": true no longer reproduces;
  - a baseline bench or metric is missing from the current run.

Metrics present only in the current run are reported as informational
(new benches are added by PRs all the time).

Usage:
  scripts/compare_benches.py --baseline bench/baselines \
      --current build/bench_results [--throughput-tol 0.4] [--qsnr-tol 1.0]

Exit status: number of regressions (0 = gate passes).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def is_qsnr_metric(name: str, unit: str) -> bool:
    return unit == "dB" or "qsnr" in name


def is_host_conditional(name: str) -> bool:
    """Keys only emitted on capable hosts: ISA-tagged metrics
    (quantize_mx9_avx2_*, gemm_*_avx512_*) exist only where the CPU
    reports the ISA, and pool-gated claims (gemm_prefill_pool_*) only
    where the machine has >= 2 lanes to scale across."""
    return "avx2" in name or "avx512" in name or "pool" in name


def cpu_feature_summary() -> str:
    """The host's SIMD story, so a cross-machine comparison log shows
    WHY an ISA-conditional key is absent (best effort; Linux only)."""
    feats = ("avx2", "avx512f", "avx512bw", "avx512_vnni")
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("flags"):
                    have = set(line.split(":", 1)[1].split())
                    return " ".join(
                        f"{name}={'yes' if name in have else 'no'}"
                        for name in feats
                    )
    except OSError:
        pass
    return "unknown (no /proc/cpuinfo)"


def is_throughput_metric(name: str) -> bool:
    return name.endswith("_items_per_sec")


def load_reports(directory: Path) -> dict[str, dict]:
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with path.open() as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"ERROR: cannot parse {path}: {e}")
            continue
        reports[data.get("bench", path.stem)] = data
    return reports


def metric_map(report: dict) -> dict[str, dict]:
    return {m["name"]: m for m in report.get("metrics", [])}


def check_map(report: dict) -> dict[str, bool]:
    return {c["name"]: bool(c["pass"]) for c in report.get("checks", [])}


def compare(
    base: dict[str, dict],
    cur: dict[str, dict],
    throughput_tol: float,
    qsnr_tol: float,
) -> tuple[list[str], list[str]]:
    regressions: list[str] = []
    notes: list[str] = []

    for bench, base_report in sorted(base.items()):
        cur_report = cur.get(bench)
        if cur_report is None:
            regressions.append(f"{bench}: report missing from current run")
            continue

        if base_report.get("fast_mode") != cur_report.get("fast_mode"):
            notes.append(
                f"{bench}: WARNING comparing fast_mode="
                f"{cur_report.get('fast_mode')} against baseline "
                f"fast_mode={base_report.get('fast_mode')} — Monte-Carlo "
                f"sizes differ, QSNR deltas are expected"
            )

        if base_report.get("reproduced") is True and (
            cur_report.get("reproduced") is not True
        ):
            regressions.append(
                f"{bench}: claim verdict regressed "
                f"(baseline reproduced, current "
                f"{cur_report.get('reproduced')})"
            )

        base_metrics = metric_map(base_report)
        cur_metrics = metric_map(cur_report)
        for name, bm in sorted(base_metrics.items()):
            cm = cur_metrics.get(name)
            if cm is None:
                # Host-conditional keys (ISA-tagged, pool-gated) are
                # only emitted on capable hosts; their absence is not a
                # regression when the gate runs on different hardware.
                if is_host_conditional(name):
                    notes.append(
                        f"{bench}/{name}: host-conditional metric absent"
                    )
                else:
                    regressions.append(f"{bench}/{name}: metric missing")
                continue
            bv, cv = bm["value"], cm["value"]
            unit = bm.get("unit", "")
            if is_throughput_metric(name):
                floor = bv * throughput_tol
                verdict = "REGRESSION" if cv < floor else "ok"
                line = (
                    f"{bench}/{name}: {cv:.3e} vs baseline {bv:.3e} "
                    f"({cv / bv:.2f}x, floor {throughput_tol:.2f}x) "
                    f"[{verdict}]"
                )
                (regressions if cv < floor else notes).append(line)
            elif is_qsnr_metric(name, unit):
                delta = cv - bv
                verdict = "REGRESSION" if delta < -qsnr_tol else "ok"
                line = (
                    f"{bench}/{name}: {cv:.2f} dB vs baseline {bv:.2f} dB "
                    f"({delta:+.2f} dB, tol -{qsnr_tol:.2f}) [{verdict}]"
                )
                (regressions if delta < -qsnr_tol else notes).append(line)
            # Other metrics (wall times, counts, cost ratios) are
            # informational only: they either have dedicated claim
            # checks in the bench itself or are environment-dependent.

        for name, passed in sorted(check_map(base_report).items()):
            cur_checks = check_map(cur_report)
            if name not in cur_checks:
                if is_host_conditional(name):
                    notes.append(
                        f"{bench}/check {name}: host-conditional "
                        f"check absent"
                    )
                else:
                    regressions.append(f"{bench}/check {name}: missing")
            elif passed and not cur_checks[name]:
                regressions.append(
                    f"{bench}/check {name}: passed in baseline, fails now"
                )

    for bench in sorted(set(cur) - set(base)):
        notes.append(f"{bench}: new bench (no baseline yet)")
    return regressions, notes


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline",
        type=Path,
        default=Path("bench/baselines"),
        help="directory with the committed BENCH_*.json snapshot",
    )
    ap.add_argument(
        "--current",
        type=Path,
        default=Path("build/bench_results"),
        help="directory with the run under test",
    )
    ap.add_argument(
        "--throughput-tol",
        type=float,
        default=0.4,
        help="minimum allowed current/baseline throughput ratio",
    )
    ap.add_argument(
        "--qsnr-tol",
        type=float,
        default=1.0,
        help="maximum allowed QSNR drop in dB",
    )
    ap.add_argument(
        "--verbose",
        action="store_true",
        help="deprecated no-op: passing metrics always print",
    )
    args = ap.parse_args()

    if not args.baseline.is_dir():
        print(f"ERROR: baseline directory {args.baseline} does not exist")
        return 1
    if not args.current.is_dir():
        print(f"ERROR: current directory {args.current} does not exist")
        return 1

    base = load_reports(args.baseline)
    cur = load_reports(args.current)
    if not base:
        print(f"ERROR: no BENCH_*.json in {args.baseline}")
        return 1

    regressions, notes = compare(
        base, cur, args.throughput_tol, args.qsnr_tol
    )

    print(f"compare_benches: host CPU features: {cpu_feature_summary()}")
    # Per-metric comparison lines print on success too, so CI logs show
    # the speedup a PR actually delivered, not only its failures
    # (--verbose is kept for compatibility; it no longer gates output).
    for line in notes:
        print(f"  {line}")
    print(
        f"compare_benches: {len(base)} baseline bench(es), "
        f"{len(regressions)} regression(s)"
    )
    for line in regressions:
        print(f"  REGRESSION {line}")
    return len(regressions)


if __name__ == "__main__":
    sys.exit(main())
