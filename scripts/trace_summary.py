#!/usr/bin/env python3
"""Validate and summarize an MX_TRACE Chrome trace-event JSON file.

The mx_obs trace exporter (src/obs/obs.h) writes one complete-event
("ph":"X") object per span, metadata ("ph":"M") thread names, and one
counter ("ph":"C") event per registered counter/gauge.  This script
checks the structural invariants the exporter promises:

  - the file parses as one JSON array of event objects;
  - every thread's spans are well-nested: spans on one tid either
    contain each other or are disjoint (the RAII stack discipline means
    overlap is an exporter/clock bug);
  - timestamps are monotonic per thread (sorted by start time) and
    durations are non-negative;

then prints a per-span-name time breakdown (count, total/mean self-ms)
and a per-subsystem rollup (the dotted-name prefix: serve, gemm, ...).

With --require a,b,c it additionally fails unless every named
subsystem contributed at least one span or counter event — CI uses
this to pin "all five instrumented subsystems are present" on traces
from the serve + decode-session suites.

Usage:
  scripts/trace_summary.py TRACE.json [--require serve,session,gemm]

Exit status: 0 = valid, 1 = validation failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_events(path: Path) -> list[dict]:
    with path.open() as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError("trace root is not a JSON array")
    for i, e in enumerate(data):
        if not isinstance(e, dict) or "ph" not in e or "name" not in e:
            raise ValueError(f"event {i} is not a trace event object")
    return data


def check_nesting(spans_by_tid: dict[int, list[dict]]) -> list[str]:
    """Spans on one thread must be disjoint or properly contained.

    Events arrive sorted by (start, depth) — the exporter's order — so
    a stack of open intervals detects any partial overlap.
    """
    errors: list[str] = []
    for tid, spans in sorted(spans_by_tid.items()):
        stack: list[tuple[float, float, str]] = []  # (start, end, name)
        last_start = None
        for s in spans:
            start = float(s["ts"])
            end = start + float(s["dur"])
            if float(s["dur"]) < 0:
                errors.append(
                    f"tid {tid}: span '{s['name']}' has negative "
                    f"duration {s['dur']}"
                )
                continue
            if last_start is not None and start < last_start:
                errors.append(
                    f"tid {tid}: span '{s['name']}' starts at {start} "
                    f"before the previous span's start {last_start} — "
                    f"timestamps not monotonic"
                )
            last_start = start
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f"tid {tid}: span '{s['name']}' "
                    f"[{start}, {end}) partially overlaps enclosing "
                    f"'{stack[-1][2]}' [{stack[-1][0]}, {stack[-1][1]})"
                )
                continue
            stack.append((start, end, s["name"]))
    return errors


def summarize(events: list[dict]) -> int:
    spans = [e for e in events if e.get("ph") == "X"]
    counters = [e for e in events if e.get("ph") == "C"]

    spans_by_tid: dict[int, list[dict]] = defaultdict(list)
    for s in spans:
        missing = [k for k in ("ts", "dur", "tid") if k not in s]
        if missing:
            print(f"ERROR: span '{s['name']}' lacks {missing}")
            return 1
        spans_by_tid[s["tid"]].append(s)

    errors = check_nesting(spans_by_tid)
    for e in errors:
        print(f"ERROR: {e}")

    # Self time = duration minus time covered by direct children, so a
    # parent stage (serve.batch) does not double-count its substages.
    self_ms: dict[str, float] = defaultdict(float)
    total_ms: dict[str, float] = defaultdict(float)
    count: dict[str, int] = defaultdict(int)
    for tid, tspans in spans_by_tid.items():
        stack: list[dict] = []  # open spans, children subtract from them
        child_time: dict[int, float] = defaultdict(float)
        order: list[dict] = sorted(
            tspans, key=lambda s: (float(s["ts"]), -float(s["dur"]))
        )
        for s in order:
            start, dur = float(s["ts"]), float(s["dur"])
            while stack and start >= float(stack[-1]["ts"]) + float(
                stack[-1]["dur"]
            ):
                top = stack.pop()
                self_ms[top["name"]] += (
                    float(top["dur"]) - child_time.pop(id(top), 0.0)
                ) / 1e3
            if stack:
                child_time[id(stack[-1])] += dur
            count[s["name"]] += 1
            total_ms[s["name"]] += dur / 1e3
            stack.append(s)
        while stack:
            top = stack.pop()
            self_ms[top["name"]] += (
                float(top["dur"]) - child_time.pop(id(top), 0.0)
            ) / 1e3

    print(
        f"trace_summary: {len(spans)} spans on {len(spans_by_tid)} "
        f"thread(s), {len(counters)} counter(s)"
    )
    if count:
        print(f"  {'span':<24} {'count':>8} {'total ms':>12} "
              f"{'self ms':>12} {'mean us':>10}")
        for name in sorted(count, key=lambda n: -self_ms[n]):
            mean_us = total_ms[name] * 1e3 / count[name]
            print(
                f"  {name:<24} {count[name]:>8} {total_ms[name]:>12.3f} "
                f"{self_ms[name]:>12.3f} {mean_us:>10.2f}"
            )

    by_subsystem: dict[str, float] = defaultdict(float)
    for name, ms in self_ms.items():
        by_subsystem[name.split(".", 1)[0]] += ms
    for e in counters:
        by_subsystem.setdefault(e["name"].split(".", 1)[0], 0.0)
    print("  per-subsystem self time:")
    for sub, ms in sorted(by_subsystem.items(), key=lambda kv: -kv[1]):
        print(f"    {sub:<12} {ms:>12.3f} ms")

    return 1 if errors else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", type=Path, help="MX_TRACE output file")
    ap.add_argument(
        "--require",
        default="",
        help="comma-separated subsystems that must appear "
        "(span or counter name prefix before the first dot)",
    )
    args = ap.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"ERROR: cannot load {args.trace}: {e}")
        return 1

    status = summarize(events)

    if args.require:
        present = {
            e["name"].split(".", 1)[0]
            for e in events
            if e.get("ph") in ("X", "C")
        }
        for sub in args.require.split(","):
            sub = sub.strip()
            if sub and sub not in present:
                print(f"ERROR: required subsystem '{sub}' absent "
                      f"from the trace")
                status = 1

    print(f"trace_summary: {'OK' if status == 0 else 'FAILED'}")
    return status


if __name__ == "__main__":
    sys.exit(main())
